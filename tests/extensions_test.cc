// Tests for the Section 5.5 / Section 4.3 extension features: bit-packed
// columns, the radix-partitioned join, and the multi-GPU scaling model.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "gpu/hash_join.h"
#include "gpu/hash_table.h"
#include "gpu/packed_column.h"
#include "gpu/radix_join.h"
#include "model/multi_gpu.h"
#include "sim/device.h"

namespace crystal::gpu {
namespace {

using sim::Device;
using sim::DeviceBuffer;
using sim::DeviceProfile;

// ------------------------------ PackedColumn -----------------------------

class PackedBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(PackedBitsTest, RoundTripsEveryValue) {
  const int bits = GetParam();
  Device dev(DeviceProfile::V100());
  const int64_t n = 10'000;
  std::vector<int32_t> values(n);
  Rng rng(bits);
  const int32_t max_v =
      bits == 32 ? INT32_MAX : static_cast<int32_t>((1ll << bits) - 1);
  for (auto& v : values) {
    v = static_cast<int32_t>(rng.Uniform(0, max_v));
  }
  PackedColumn col(dev, values.data(), n, bits);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(col.Get(i), values[i]) << "bits=" << bits << " i=" << i;
  }
}

TEST_P(PackedBitsTest, SelectCountMatchesPlain) {
  const int bits = GetParam();
  Device dev(DeviceProfile::V100());
  const int64_t n = 20'000;
  const int32_t max_v =
      bits == 32 ? 1'000'000 : static_cast<int32_t>((1ll << bits) - 1);
  DeviceBuffer<int32_t> plain(dev, n);
  std::vector<int32_t> values(n);
  Rng rng(100 + bits);
  for (int64_t i = 0; i < n; ++i) {
    values[i] = static_cast<int32_t>(rng.Uniform(0, max_v));
    plain[i] = values[i];
  }
  PackedColumn packed(dev, values.data(), n, bits);
  const int32_t lo = max_v / 4;
  const int32_t hi = max_v / 2;
  EXPECT_EQ(SelectCountPacked(dev, packed, lo, hi),
            SelectCountPlain(dev, plain, lo, hi));
}

INSTANTIATE_TEST_SUITE_P(Widths, PackedBitsTest,
                         ::testing::Values(1, 5, 8, 11, 16, 17, 24, 31, 32));

TEST(PackedColumnTest, PackedBytesShrinkWithWidth) {
  Device dev(DeviceProfile::V100());
  const int64_t n = 100'000;
  std::vector<int32_t> values(n, 3);
  PackedColumn narrow(dev, values.data(), n, 8);
  PackedColumn wide(dev, values.data(), n, 32);
  EXPECT_NEAR(static_cast<double>(wide.packed_bytes()) /
                  static_cast<double>(narrow.packed_bytes()),
              4.0, 0.01);
}

TEST(PackedColumnTest, ScanTrafficMatchesBitWidth) {
  Device dev(DeviceProfile::V100());
  const int64_t n = 1 << 16;
  std::vector<int32_t> values(n, 1);
  PackedColumn col(dev, values.data(), n, 10);
  dev.ResetStats();
  SelectCountPacked(dev, col, 0, 1);
  // 10-bit scan moves ~10/32 of the plain traffic.
  EXPECT_NEAR(static_cast<double>(dev.stats().seq_read_bytes),
              n * 10.0 / 8.0, n * 0.01);
}

TEST(PackedColumnTest, RejectsOutOfRangeValues) {
  Device dev(DeviceProfile::V100());
  std::vector<int32_t> values = {256};  // needs 9 bits
  EXPECT_DEATH(PackedColumn(dev, values.data(), 1, 8), "does not fit");
}

// ------------------------------- Radix join ------------------------------

class RadixJoinBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(RadixJoinBitsTest, MatchesNoPartitioningJoin) {
  const int bits = GetParam();
  Device dev(DeviceProfile::V100());
  const int64_t build_n = 30'000;
  const int64_t probe_n = 120'000;
  DeviceBuffer<int32_t> bk(dev, build_n), bv(dev, build_n);
  Rng rng(7 + bits);
  for (int64_t i = 0; i < build_n; ++i) {
    bk[i] = static_cast<int32_t>(i * 2);  // even keys
    bv[i] = rng.UniformInt(0, 999);
  }
  DeviceBuffer<int32_t> pk(dev, probe_n), pv(dev, probe_n);
  for (int64_t i = 0; i < probe_n; ++i) {
    pk[i] = rng.UniformInt(0, static_cast<int32_t>(build_n * 2 - 1));
    pv[i] = rng.UniformInt(0, 999);
  }
  DeviceHashTable table(dev, build_n);
  table.Build(bk, bv);
  const JoinResult plain = HashJoinProbeSum(dev, table, pk, pv);
  const JoinResult radix = RadixHashJoinSum(dev, bk, bv, pk, pv, bits);
  EXPECT_EQ(radix.checksum, plain.checksum);
  EXPECT_EQ(radix.matches, plain.matches);
}

INSTANTIATE_TEST_SUITE_P(Bits, RadixJoinBitsTest, ::testing::Values(1, 4, 8));

TEST(RadixJoinTest, ChoosesEnoughBitsToFitCache) {
  Device dev(DeviceProfile::V100());
  // 64M build rows * 16B = 1 GB; 6 MB L2 => capped at the 8-bit pass limit.
  EXPECT_EQ(ChooseRadixBits(dev, 64'000'000), 8);
  // Tiny build side: no partitioning needed beyond the minimum.
  EXPECT_EQ(ChooseRadixBits(dev, 1'000), 1);
}

TEST(RadixJoinTest, PartitioningTurnsDramProbesIntoCacheProbes) {
  // A build side far beyond L2: the no-partitioning join misses DRAM on
  // most probes, while the radix join's per-partition tables fit.
  Device dev_plain(DeviceProfile::V100());
  Device dev_radix(DeviceProfile::V100());
  const int64_t build_n = 2'000'000;  // 64 MB table
  const int64_t probe_n = 1'000'000;
  auto fill = [&](Device&, DeviceBuffer<int32_t>& k,
                  DeviceBuffer<int32_t>& v, int64_t n, bool dense) {
    Rng rng(11);
    for (int64_t i = 0; i < n; ++i) {
      k[i] = dense ? static_cast<int32_t>(i)
                   : rng.UniformInt(0, static_cast<int32_t>(build_n - 1));
      v[i] = 1;
    }
  };
  DeviceBuffer<int32_t> bk1(dev_plain, build_n), bv1(dev_plain, build_n);
  DeviceBuffer<int32_t> pk1(dev_plain, probe_n), pv1(dev_plain, probe_n);
  fill(dev_plain, bk1, bv1, build_n, true);
  fill(dev_plain, pk1, pv1, probe_n, false);
  DeviceHashTable table(dev_plain, build_n);
  table.Build(bk1, bv1);
  dev_plain.ResetStats();
  HashJoinProbeSum(dev_plain, table, pk1, pv1);
  const auto& plain_stats = dev_plain.stats();

  DeviceBuffer<int32_t> bk2(dev_radix, build_n), bv2(dev_radix, build_n);
  DeviceBuffer<int32_t> pk2(dev_radix, probe_n), pv2(dev_radix, probe_n);
  fill(dev_radix, bk2, bv2, build_n, true);
  fill(dev_radix, pk2, pv2, probe_n, false);
  dev_radix.ResetStats();
  RadixHashJoinSum(dev_radix, bk2, bv2, pk2, pv2,
                   ChooseRadixBits(dev_radix, build_n));
  const auto& radix_stats = dev_radix.stats();

  const double plain_miss =
      static_cast<double>(plain_stats.rand_read_lines_dram) /
      (plain_stats.rand_read_lines_dram + plain_stats.rand_read_lines_cache);
  const double radix_miss =
      static_cast<double>(radix_stats.rand_read_lines_dram) /
      (radix_stats.rand_read_lines_dram + radix_stats.rand_read_lines_cache +
       1);
  EXPECT_GT(plain_miss, 0.5);
  EXPECT_LT(radix_miss, 0.25);
}

}  // namespace
}  // namespace crystal::gpu

namespace crystal::model {
namespace {

TEST(MultiGpuModelTest, ProbeTimeDividesAcrossGpus) {
  MultiGpuConfig one;
  MultiGpuConfig four;
  four.num_gpus = 4;
  const double t1 = MultiGpuQueryMs(0.5, 4.0, 1000, one);
  const double t4 = MultiGpuQueryMs(0.5, 4.0, 1000, four);
  EXPECT_LT(t4, t1);
  // Build is replicated, so scaling is sublinear.
  EXPECT_GT(t4, t1 / 4.0);
}

TEST(MultiGpuModelTest, MergeCostGrowsWithGroups) {
  MultiGpuConfig cfg;
  cfg.num_gpus = 8;
  EXPECT_GT(MultiGpuQueryMs(0.1, 1.0, 10'000'000, cfg),
            MultiGpuQueryMs(0.1, 1.0, 100, cfg));
}

TEST(MultiGpuModelTest, CapacityScalesWithGpus) {
  MultiGpuConfig one;
  MultiGpuConfig eight;
  eight.num_gpus = 8;
  EXPECT_GE(MaxScaleFactor(eight), 8 * MaxScaleFactor(one) - 8);
  EXPECT_GT(MaxScaleFactor(one), 100);  // a single 32 GB V100 holds SF > 100
}

}  // namespace
}  // namespace crystal::model
