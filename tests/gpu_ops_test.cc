#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "gpu/hash_join.h"
#include "gpu/hash_table.h"
#include "gpu/naive_select.h"
#include "gpu/project.h"
#include "gpu/radix_sort.h"
#include "gpu/select.h"
#include "sim/timing.h"

namespace crystal::gpu {
namespace {

using sim::Device;
using sim::DeviceBuffer;
using sim::DeviceProfile;

DeviceBuffer<float> RandomFloats(Device& dev, int64_t n, uint64_t seed) {
  DeviceBuffer<float> buf(dev, n);
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) buf[i] = rng.NextFloat();
  return buf;
}

// ------------------------------- Select ----------------------------------

class SelectSelectivityTest : public ::testing::TestWithParam<double> {};

TEST_P(SelectSelectivityTest, CrystalSelectMatchesReference) {
  const double sigma = GetParam();
  Device dev(DeviceProfile::V100());
  const int64_t n = 100'000;
  DeviceBuffer<float> in = RandomFloats(dev, n, 11);
  DeviceBuffer<float> out(dev, n);
  const float cut = static_cast<float>(sigma);
  const int64_t count =
      Select(dev, in, [cut](float v) { return v < cut; }, &out);
  std::vector<float> expected;
  for (int64_t i = 0; i < n; ++i) {
    if (in[i] < cut) expected.push_back(in[i]);
  }
  ASSERT_EQ(count, static_cast<int64_t>(expected.size()));
  std::vector<float> got(out.data(), out.data() + count);
  EXPECT_EQ(got, expected);
}

TEST_P(SelectSelectivityTest, NaiveSelectSameRowsDifferentCost) {
  const double sigma = GetParam();
  Device dev(DeviceProfile::V100());
  const int64_t n = 100'000;
  DeviceBuffer<float> in = RandomFloats(dev, n, 13);
  DeviceBuffer<float> out_naive(dev, n);
  DeviceBuffer<float> out_crystal(dev, n);
  const float cut = static_cast<float>(sigma);
  auto pred = [cut](float v) { return v < cut; };
  const int64_t n1 = NaiveSelect(dev, in, pred, &out_naive, 1024);
  const int64_t n2 = Select(dev, in, pred, &out_crystal);
  ASSERT_EQ(n1, n2);
  std::vector<float> a(out_naive.data(), out_naive.data() + n1);
  std::vector<float> b(out_crystal.data(), out_crystal.data() + n2);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, SelectSelectivityTest,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));

TEST(SelectTest, NaiveCostsMoreThanCrystal) {
  // Section 3.3: the three-kernel independent-threads plan reads the input
  // twice and scatters uncoalesced; Crystal's fused kernel wins ~9x.
  const int64_t n = 1 << 20;
  Device dev_naive(DeviceProfile::V100());
  Device dev_crystal(DeviceProfile::V100());
  DeviceBuffer<float> in1 = RandomFloats(dev_naive, n, 17);
  DeviceBuffer<float> in2 = RandomFloats(dev_crystal, n, 17);
  DeviceBuffer<float> out1(dev_naive, n);
  DeviceBuffer<float> out2(dev_crystal, n);
  auto pred = [](float v) { return v < 0.5f; };
  dev_naive.ResetStats();
  NaiveSelect(dev_naive, in1, pred, &out1);
  dev_crystal.ResetStats();
  Select(dev_crystal, in2, pred, &out2);
  const double naive_ms = dev_naive.TotalEstimatedMs();
  const double crystal_ms = dev_crystal.TotalEstimatedMs();
  EXPECT_GT(naive_ms, 3.0 * crystal_ms);
}

TEST(SelectTest, EmptyInput) {
  Device dev(DeviceProfile::V100());
  DeviceBuffer<float> in(dev, 0);
  DeviceBuffer<float> out(dev, 1);
  EXPECT_EQ(Select(dev, in, [](float) { return true; }, &out), 0);
}

// ------------------------------- Project ---------------------------------

TEST(ProjectTest, LinearExact) {
  Device dev(DeviceProfile::V100());
  const int64_t n = 10'000;
  DeviceBuffer<float> x1 = RandomFloats(dev, n, 1);
  DeviceBuffer<float> x2 = RandomFloats(dev, n, 2);
  DeviceBuffer<float> out(dev, n);
  ProjectLinear(dev, x1, x2, 2.0f, 3.0f, &out);
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_FLOAT_EQ(out[i], 2.0f * x1[i] + 3.0f * x2[i]);
  }
}

TEST(ProjectTest, SigmoidWithinTolerance) {
  Device dev(DeviceProfile::V100());
  const int64_t n = 10'000;
  DeviceBuffer<float> x1 = RandomFloats(dev, n, 3);
  DeviceBuffer<float> x2 = RandomFloats(dev, n, 4);
  DeviceBuffer<float> out(dev, n);
  ProjectSigmoid(dev, x1, x2, 1.5f, -2.5f, &out);
  for (int64_t i = 0; i < n; ++i) {
    const double z = 1.5 * x1[i] - 2.5 * x2[i];
    const double want = 1.0 / (1.0 + std::exp(-z));
    ASSERT_NEAR(out[i], want, 1e-5);
  }
}

TEST(ProjectTest, TrafficIsThreeColumns) {
  Device dev(DeviceProfile::V100());
  const int64_t n = 1 << 16;
  DeviceBuffer<float> x1 = RandomFloats(dev, n, 5);
  DeviceBuffer<float> x2 = RandomFloats(dev, n, 6);
  DeviceBuffer<float> out(dev, n);
  dev.ResetStats();
  ProjectLinear(dev, x1, x2, 1.0f, 1.0f, &out);
  EXPECT_EQ(dev.stats().seq_read_bytes, static_cast<uint64_t>(2 * n * 4));
  EXPECT_EQ(dev.stats().seq_write_bytes, static_cast<uint64_t>(n * 4));
}

// --------------------------------- Join ----------------------------------

TEST(HashJoinTest, ChecksumMatchesReference) {
  Device dev(DeviceProfile::V100());
  const int64_t build_n = 10'000;
  const int64_t probe_n = 100'000;
  DeviceBuffer<int32_t> bkeys(dev, build_n);
  DeviceBuffer<int32_t> bvals(dev, build_n);
  Rng rng(7);
  for (int64_t i = 0; i < build_n; ++i) {
    bkeys[i] = static_cast<int32_t>(i * 2);  // even keys only
    bvals[i] = rng.UniformInt(0, 1000);
  }
  DeviceBuffer<int32_t> pkeys(dev, probe_n);
  DeviceBuffer<int32_t> pvals(dev, probe_n);
  for (int64_t i = 0; i < probe_n; ++i) {
    pkeys[i] = rng.UniformInt(0, static_cast<int32_t>(build_n * 2 - 1));
    pvals[i] = rng.UniformInt(0, 1000);
  }
  DeviceHashTable ht(dev, build_n);
  ht.Build(bkeys, bvals);
  const JoinResult got = HashJoinProbeSum(dev, ht, pkeys, pvals);

  int64_t want_sum = 0;
  int64_t want_matches = 0;
  for (int64_t i = 0; i < probe_n; ++i) {
    if (pkeys[i] % 2 == 0) {
      want_sum += pvals[i] + bvals[pkeys[i] / 2];
      ++want_matches;
    }
  }
  EXPECT_EQ(got.checksum, want_sum);
  EXPECT_EQ(got.matches, want_matches);
}

TEST(HashJoinTest, FiftyPercentFillRate) {
  Device dev(DeviceProfile::V100());
  DeviceHashTable ht(dev, 1000);
  EXPECT_GE(ht.num_slots(), 2000);
  EXPECT_TRUE((ht.num_slots() & (ht.num_slots() - 1)) == 0);
}

TEST(HashJoinTest, LargerTableMoreDramTraffic) {
  // Cache filtering: a table far beyond L2 must push probes to DRAM.
  const int64_t probe_n = 200'000;
  auto run = [&](int64_t build_n) {
    Device dev(DeviceProfile::V100());
    DeviceBuffer<int32_t> bkeys(dev, build_n), bvals(dev, build_n, 1);
    for (int64_t i = 0; i < build_n; ++i) bkeys[i] = static_cast<int32_t>(i);
    DeviceBuffer<int32_t> pkeys(dev, probe_n), pvals(dev, probe_n, 1);
    Rng rng(9);
    for (int64_t i = 0; i < probe_n; ++i) {
      pkeys[i] = rng.UniformInt(0, static_cast<int32_t>(build_n - 1));
    }
    DeviceHashTable ht(dev, build_n);
    ht.Build(bkeys, bvals);
    dev.ResetStats();
    HashJoinProbeSum(dev, ht, pkeys, pvals);
    const auto& st = dev.stats();
    return static_cast<double>(st.rand_read_lines_dram) /
           static_cast<double>(st.rand_read_lines_dram +
                               st.rand_read_lines_cache);
  };
  const double small_miss = run(50'000);    // ~800 KB table: fits L2
  const double large_miss = run(4'000'000); // 128 MB table: misses
  EXPECT_LT(small_miss, 0.10);
  EXPECT_GT(large_miss, 0.80);
}

// --------------------------------- Sort ----------------------------------

TEST(RadixSortTest, HistogramCountsEveryKeyOnce) {
  Device dev(DeviceProfile::V100());
  const int64_t n = 50'000;
  DeviceBuffer<uint32_t> keys(dev, n);
  Rng rng(21);
  for (int64_t i = 0; i < n; ++i) keys[i] = rng.Next32();
  const std::vector<int64_t> hist = RadixHistogram(dev, keys, 8, 6);
  EXPECT_EQ(static_cast<int64_t>(hist.size()), 64);
  int64_t total = 0;
  for (int64_t h : hist) total += h;
  EXPECT_EQ(total, n);
}

TEST(RadixSortTest, ShufflePassIsStable) {
  Device dev(DeviceProfile::V100());
  const int64_t n = 10'000;
  DeviceBuffer<uint32_t> keys(dev, n), vals(dev, n);
  DeviceBuffer<uint32_t> out_keys(dev, n), out_vals(dev, n);
  Rng rng(22);
  for (int64_t i = 0; i < n; ++i) {
    keys[i] = rng.Next32() & 0xFF;          // only low byte varies
    vals[i] = static_cast<uint32_t>(i);     // original position
  }
  RadixShuffle(dev, keys, vals, 0, n, 0, 4, &out_keys, &out_vals);
  // Within each bucket of the low nibble, positions must stay ascending.
  uint32_t prev_key = 0;
  uint32_t prev_val = 0;
  for (int64_t i = 0; i < n; ++i) {
    const uint32_t digit = out_keys[i] & 0xF;
    if (i > 0 && digit == prev_key) {
      EXPECT_GT(out_vals[i], prev_val);
    }
    if (i > 0) {
      EXPECT_GE(digit, prev_key);
    }
    prev_key = digit;
    prev_val = out_vals[i];
  }
}

TEST(RadixSortTest, LsbSortsRandomData) {
  Device dev(DeviceProfile::V100());
  const int64_t n = 100'000;
  DeviceBuffer<uint32_t> keys(dev, n), vals(dev, n);
  Rng rng(23);
  std::vector<std::pair<uint32_t, uint32_t>> expected;
  for (int64_t i = 0; i < n; ++i) {
    keys[i] = rng.Next32();
    vals[i] = static_cast<uint32_t>(i);
    expected.emplace_back(keys[i], vals[i]);
  }
  LsbRadixSort(dev, &keys, &vals);
  std::stable_sort(expected.begin(), expected.end(),
                   [](auto a, auto b) { return a.first < b.first; });
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], expected[i].first) << i;
    ASSERT_EQ(vals[i], expected[i].second) << i;
  }
}

TEST(RadixSortTest, MsbSortsRandomData) {
  Device dev(DeviceProfile::V100());
  const int64_t n = 100'000;
  DeviceBuffer<uint32_t> keys(dev, n), vals(dev, n);
  Rng rng(24);
  std::vector<uint32_t> expected;
  for (int64_t i = 0; i < n; ++i) {
    keys[i] = rng.Next32();
    vals[i] = keys[i] ^ 0xdeadbeef;  // value tied to key
    expected.push_back(keys[i]);
  }
  MsbRadixSort(dev, &keys, &vals);
  std::sort(expected.begin(), expected.end());
  for (int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], expected[i]);
    ASSERT_EQ(vals[i], keys[i] ^ 0xdeadbeef);
  }
}

TEST(RadixSortTest, MsbAlreadySortedAndDuplicates) {
  Device dev(DeviceProfile::V100());
  const int64_t n = 4096;
  DeviceBuffer<uint32_t> keys(dev, n), vals(dev, n, 0);
  for (int64_t i = 0; i < n; ++i) keys[i] = static_cast<uint32_t>(i % 7);
  MsbRadixSort(dev, &keys, &vals);
  for (int64_t i = 1; i < n; ++i) ASSERT_GE(keys[i], keys[i - 1]);
}

TEST(RadixSortTest, StablePassRejectsWideRadix) {
  Device dev(DeviceProfile::V100());
  DeviceBuffer<uint32_t> keys(dev, 16), vals(dev, 16);
  EXPECT_DEATH(LsbRadixSort(dev, &keys, &vals, {8, 8, 8, 8}),
               "stable pass limited");
}

}  // namespace
}  // namespace crystal::gpu
