#include <gtest/gtest.h>

#include "model/operator_models.h"
#include "model/query_models.h"

namespace crystal::model {
namespace {

const sim::DeviceProfile kGpu = sim::DeviceProfile::V100();
const sim::DeviceProfile kCpu = sim::DeviceProfile::SkylakeI7();
// The paper says "input array of 2^29"; its reported runtimes (GPU 3.9 ms,
// CPU-Opt 64 ms for project; CPU sort 464 ms) sit exactly on the model for
// 2^28 rows per column, so that is the per-column size we use throughout
// (see EXPERIMENTS.md).
constexpr int64_t kN29 = 1ll << 28;

TEST(ProjectModelTest, MatchesPaperNumbers) {
  // Fig. 10: GPU measured 3.9 ms, CPU-Opt measured 64 ms for Q1 (models
  // slightly below both).
  EXPECT_NEAR(ProjectModelMs(kN29, kGpu), 3.66, 0.1);
  EXPECT_NEAR(ProjectModelMs(kN29, kCpu), 60.0, 4.0);
}

TEST(ProjectModelTest, CpuToGpuRatioNearBandwidthRatio) {
  const double ratio = ProjectModelMs(kN29, kCpu) / ProjectModelMs(kN29, kGpu);
  EXPECT_GT(ratio, 15.0);
  EXPECT_LT(ratio, 18.0);
}

TEST(ProjectModelTest, ScalarSigmoidIsComputeBound) {
  // Fig. 10: CPU (scalar) Q2 at 282 ms vs CPU-Opt near the 64 ms... the
  // scalar variant must sit far above the bandwidth model.
  const double scalar = ProjectSigmoidScalarCpuMs(kN29, kCpu);
  EXPECT_GT(scalar, 2.0 * ProjectModelMs(kN29, kCpu));
}

TEST(SelectModelTest, GrowsLinearlyWithSelectivity) {
  const double t0 = SelectModelMs(kN29, 0.0, kGpu);
  const double t5 = SelectModelMs(kN29, 0.5, kGpu);
  const double t10 = SelectModelMs(kN29, 1.0, kGpu);
  EXPECT_LT(t0, t5);
  EXPECT_LT(t5, t10);
  EXPECT_NEAR(t10 - t5, t5 - t0, 1e-6);
}

TEST(SelectModelTest, BranchingHumpsAtMidSelectivity) {
  const double lo = SelectBranchingCpuMs(kN29, 0.05, kCpu);
  const double mid = SelectBranchingCpuMs(kN29, 0.5, kCpu);
  // The misprediction term peaks at sigma=0.5.
  const double base_mid = SelectModelMs(kN29, 0.5, kCpu);
  EXPECT_GT(mid, base_mid * 1.5);
  EXPECT_GT(mid, lo);
}

TEST(SelectModelTest, CpuToGpuRatioNearBandwidthRatio) {
  // Section 4.2: average runtime ratio 15.8 vs bandwidth ratio 16.2.
  double ratio_sum = 0;
  int count = 0;
  for (double s = 0.0; s <= 1.0; s += 0.1) {
    ratio_sum += SelectModelMs(kN29, s, kCpu) / SelectModelMs(kN29, s, kGpu);
    ++count;
  }
  EXPECT_NEAR(ratio_sum / count, 16.2, 0.8);
}

TEST(JoinModelTest, StepsAtCacheBoundaries) {
  const int64_t probe = 256'000'000;
  // GPU: step when the table leaves the 6 MB L2.
  const double gpu_in_l2 = JoinProbeModel(probe, 4 << 20, kGpu).total_ms;
  const double gpu_out_l2 = JoinProbeModel(probe, 64 << 20, kGpu).total_ms;
  EXPECT_GT(gpu_out_l2, 2.0 * gpu_in_l2);
  // CPU: step when the table leaves the 20 MB L3.
  const double cpu_in_l3 = JoinProbeModel(probe, 8 << 20, kCpu).total_ms;
  const double cpu_out_l3 = JoinProbeModel(probe, 256 << 20, kCpu).total_ms;
  EXPECT_GT(cpu_out_l3, 2.0 * cpu_in_l3);
}

TEST(JoinModelTest, BoundLevelLabels) {
  const int64_t probe = 256'000'000;
  EXPECT_EQ(JoinProbeModel(probe, 64 << 10, kCpu).bound_level, "L2");
  EXPECT_EQ(JoinProbeModel(probe, 4 << 20, kCpu).bound_level, "L3");
  EXPECT_EQ(JoinProbeModel(probe, 1 << 30, kCpu).bound_level, "DRAM");
  EXPECT_EQ(JoinProbeModel(probe, 4 << 20, kGpu).bound_level, "L2");
  EXPECT_EQ(JoinProbeModel(probe, 1 << 30, kGpu).bound_level, "DRAM");
}

TEST(JoinModelTest, MidCacheSegmentRatioNearPaper) {
  // Section 4.3: hash table 1-4 MB => GPU-L2 vs CPU-L3 bandwidth ratio,
  // about 14.5x (2200/157 = 14.0 with equal granularity).
  const int64_t probe = 256'000'000;
  const int64_t ht = 2 << 20;
  const double ratio = JoinProbeModel(probe, ht, kCpu).total_ms /
                       JoinProbeModel(probe, ht, kGpu).total_ms;
  EXPECT_GT(ratio, 10.0);
  EXPECT_LT(ratio, 16.0);
}

TEST(JoinModelTest, DramSegmentRatioNearPaper) {
  // Section 4.3: both tables out of cache; GPU reads 128 B lines vs CPU's
  // 64 B, so the model predicts ~8.1x; the measured 10.5x comes from CPU
  // stalls (the "actual" variant).
  const int64_t probe = 256'000'000;
  const int64_t ht = 1ll << 30;
  const double model_ratio = JoinProbeModel(probe, ht, kCpu).total_ms /
                             JoinProbeModel(probe, ht, kGpu).total_ms;
  EXPECT_NEAR(model_ratio, 8.1, 1.5);
  const double actual_ratio =
      JoinProbeCpuActualMs(probe, ht, kCpu, "scalar") /
      JoinProbeModel(probe, ht, kGpu).total_ms;
  EXPECT_GT(actual_ratio, model_ratio);
  EXPECT_NEAR(actual_ratio, 10.5, 2.5);
}

TEST(JoinModelTest, SimdWorseThanScalarWhenCached) {
  const int64_t probe = 256'000'000;
  const int64_t ht = 64 << 10;
  EXPECT_GT(JoinProbeCpuActualMs(probe, ht, kCpu, "simd"),
            JoinProbeCpuActualMs(probe, ht, kCpu, "scalar"));
}

TEST(JoinModelTest, PrefetchHelpsOnlyOutOfCache) {
  const int64_t probe = 256'000'000;
  EXPECT_GT(JoinProbeCpuActualMs(probe, 64 << 10, kCpu, "prefetch"),
            JoinProbeCpuActualMs(probe, 64 << 10, kCpu, "scalar"));
  EXPECT_LT(JoinProbeCpuActualMs(probe, 1ll << 30, kCpu, "prefetch"),
            JoinProbeCpuActualMs(probe, 1ll << 30, kCpu, "scalar"));
}

TEST(SortModelTest, PaperScaleSortTimes) {
  // Section 4.4: sorting 2^28 entries takes 464 ms (CPU) / 27.08 ms (GPU),
  // a 17.13x gain. The bandwidth model gives the GPU ~17x too.
  const int64_t n = 1ll << 28;
  const double gpu = SortModelMs(n, 4, kGpu);
  const double cpu = SortModelMs(n, 4, kCpu);
  EXPECT_NEAR(cpu / gpu, 16.5, 1.0);
  EXPECT_NEAR(gpu, 22.0, 4.0);   // ~27 ms measured in the paper
  EXPECT_NEAR(cpu, 370.0, 70.0); // ~464 ms measured in the paper
}

TEST(SortModelTest, CpuShuffleDecaysPastEightBits) {
  const int64_t n = 256'000'000;
  EXPECT_DOUBLE_EQ(SortShuffleCpuActualMs(n, 8, kCpu),
                   SortShuffleModelMs(n, kCpu));
  EXPECT_GT(SortShuffleCpuActualMs(n, 9, kCpu), SortShuffleModelMs(n, kCpu));
  EXPECT_GT(SortShuffleCpuActualMs(n, 11, kCpu),
            SortShuffleCpuActualMs(n, 10, kCpu));
}

TEST(Q21ModelTest, PaperBallpark) {
  // Section 5.3: expected runtimes 47 ms (CPU) and 3.7 ms (GPU); actual
  // 125 ms and 3.86 ms. Our closed forms must land in those neighborhoods.
  const Q21Params params;
  const double gpu = Q21Model(params, kGpu).total_ms;
  const double cpu = Q21Model(params, kCpu).total_ms;
  EXPECT_GT(gpu, 1.5);
  EXPECT_LT(gpu, 6.0);
  EXPECT_GT(cpu, 20.0);
  EXPECT_LT(cpu, 60.0);
  const double cpu_actual = Q21CpuActualMs(params, kCpu);
  EXPECT_GT(cpu_actual, 2.0 * cpu);  // stalls dominate, as measured
  EXPECT_NEAR(cpu_actual, 125.0, 35.0);
}

TEST(Q21ModelTest, PartTableOnlyPartiallyCachedOnGpu) {
  const Q21Params params;
  const Q21Breakdown b = Q21Model(params, kGpu);
  EXPECT_GT(b.part_ht_l2_hit, 0.5);
  EXPECT_LT(b.part_ht_l2_hit, 0.9);  // paper: pi = 5.7/8 = 0.71
}

TEST(Q1ModelTest, ScanBound) {
  // 16 bytes per row: SF20 => 1.92 GB => ~2.2 ms GPU, ~36 ms CPU.
  EXPECT_NEAR(Q1ScanModelMs(120'000'000, kGpu), 2.18, 0.1);
  EXPECT_NEAR(Q1ScanModelMs(120'000'000, kCpu), 36.2, 1.0);
}

TEST(CoprocessorModelTest, PcieBound) {
  // Section 3.1: shipping 4 columns of SF20 over 12.8 GBps dominates GPU
  // execution, and exceeds the CPU's own scan time (Bc > Bp).
  const sim::PcieProfile pcie;
  const int64_t bytes = 4ll * 120'000'000 * 4;
  const double copro = model::CoprocessorTimeMs(bytes, 2.2, pcie);
  EXPECT_NEAR(copro, 150.0, 5.0);
  EXPECT_GT(copro, Q1ScanModelMs(120'000'000, kCpu));
}

TEST(CostModelTest, FourTimesCostEffective) {
  CostComparison c;
  EXPECT_NEAR(c.cost_ratio(), 6.07, 0.05);
  EXPECT_NEAR(c.cost_effectiveness(), 4.1, 0.2);
}

}  // namespace
}  // namespace crystal::model
