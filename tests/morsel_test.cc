// Morsel-boundary parity suite + build-cache correctness for the fused CPU
// engine. The fused pipeline must produce bit-identical results to the
// tuple-at-a-time reference regardless of how the fact table is cut into
// morsels (size 1, odd sizes, non-multiple-of-8 tails, morsels larger than
// the table), how many threads claim them, which SIMD dispatch path runs,
// and which build-side representation (direct-address vs hash) the join
// tables use. The build cache must serve repeated and overlapping specs
// without ever mixing up build sides that differ only in their filters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "cpu/build_cache.h"
#include "cpu/vector_ops.h"
#include "query/parser.h"
#include "query/pipeline.h"
#include "ssb/datagen.h"
#include "ssb/queries.h"
#include "ssb/vectorized_cpu_engine.h"

namespace crystal::ssb {
namespace {

// SF1 dimensions (full-size build sides) over a 30K-row fact sample: big
// enough to cross many morsel boundaries, small enough for dozens of
// reference-checked configurations.
const Database& TestDb() {
  static const Database* db = new Database(Generate(1, 200));
  return *db;
}

query::QuerySpec Adhoc(const std::string& text) {
  query::QuerySpec spec;
  std::string error;
  EXPECT_TRUE(query::ParseQuerySpec(text, &spec, &error)) << error;
  return spec;
}

/// The specs the parity sweep runs: one per structural shape — scalar
/// aggregate with fact filters only (q1.1), grouped probe cascade (q2.1),
/// IN-set build filter (q3.3), the four-table cascade with a sparse-path
/// grid (q4.3), and an ad-hoc shape carrying two group keys through a
/// later probe (compaction of carried vectors).
std::vector<query::QuerySpec> ParitySpecs() {
  return {
      query::SsbSpec(QueryId::kQ11),
      query::SsbSpec(QueryId::kQ21),
      query::SsbSpec(QueryId::kQ33),
      query::SsbSpec(QueryId::kQ43),
      Adhoc("sum revenue-supplycost join customer on custkey filter "
            "c_region = 3 join part on partkey filter p_mfgr = 5 "
            "group by c_nation, p_category"),
  };
}

/// Restores SIMD + direct-join dispatch state (and drops cached tables
/// built under a scoped representation) when a test section ends.
class DispatchGuard {
 public:
  DispatchGuard()
      : simd_(cpu::SimdEnabled()), direct_(cpu::DirectJoinEnabled()) {}
  ~DispatchGuard() {
    cpu::SetSimdEnabled(simd_);
    cpu::SetDirectJoinEnabled(direct_);
    cpu::BuildCache::Process().Clear();
  }

 private:
  bool simd_;
  bool direct_;
};

struct ParityParam {
  int64_t morsel;
  int threads;
  bool simd;
  bool direct_join;
};

class MorselParityTest : public testing::TestWithParam<ParityParam> {};

TEST_P(MorselParityTest, MatchesReference) {
  const ParityParam p = GetParam();
  if (p.simd && !cpu::SimdAvailable()) GTEST_SKIP() << "no AVX2 host";

  DispatchGuard guard;
  cpu::SetSimdEnabled(p.simd);
  cpu::SetDirectJoinEnabled(p.direct_join);
  // Representation/dispatch toggles apply to future builds only; drop
  // tables built by earlier tests so this configuration builds its own.
  cpu::BuildCache::Process().Clear();

  ThreadPool pool(p.threads);
  VectorizedCpuEngine engine(TestDb(), pool);
  engine.set_morsel_rows(p.morsel);
  for (const query::QuerySpec& spec : ParitySpecs()) {
    const QueryResult want = RunReference(TestDb(), spec);
    const QueryResult got = engine.Run(spec);
    EXPECT_TRUE(got == want)
        << spec.name << " morsel=" << p.morsel << " threads=" << p.threads
        << " simd=" << p.simd << " direct=" << p.direct_join << ": got "
        << got.ToString() << " want " << want.ToString();
  }
}

std::string ParityName(const testing::TestParamInfo<ParityParam>& info) {
  const ParityParam& p = info.param;
  return "morsel" + std::to_string(p.morsel) + "_t" +
         std::to_string(p.threads) + (p.simd ? "_simd" : "_scalar") +
         (p.direct_join ? "_direct" : "_hash");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MorselParityTest,
    testing::ValuesIn(std::vector<ParityParam>{
        // Morsel-size sweep at both SIMD settings, single-threaded: size 1
        // (every row its own morsel), 7 (odd, smaller than a vector), 999
        // (non-multiple-of-8 tail in every morsel), 4096 (vector multiple),
        // and one morsel spanning the whole table.
        {1, 1, true, true},
        {7, 1, true, true},
        {999, 1, true, true},
        {4096, 1, true, true},
        {1 << 20, 1, true, true},
        {1, 1, false, true},
        {999, 1, false, true},
        {4096, 1, false, true},
        // Multi-threaded claiming, both dispatch paths.
        {999, 3, true, true},
        {4096, 3, true, true},
        {4096, 3, false, true},
        // Hash-table build sides (direct addressing disabled) must agree
        // everywhere too.
        {999, 1, true, false},
        {4096, 3, true, false},
        {999, 1, false, false},
    }),
    ParityName);

TEST(BuildCacheTest, SecondExecuteReusesEveryBuildSide) {
  DispatchGuard guard;
  cpu::BuildCache::Process().Clear();
  ThreadPool pool(2);
  VectorizedCpuEngine engine(TestDb(), pool);

  const query::QuerySpec spec = query::SsbSpec(QueryId::kQ21);
  const QueryResult want = RunReference(TestDb(), spec);

  VectorizedCpuEngine::RunInfo first;
  EXPECT_TRUE(engine.Run(spec, &first) == want);
  EXPECT_EQ(first.cache_builds, 3);  // part, supplier, date
  EXPECT_EQ(first.cache_hits, 0);

  VectorizedCpuEngine::RunInfo second;
  EXPECT_TRUE(engine.Run(spec, &second) == want);
  EXPECT_EQ(second.cache_builds, 0);
  EXPECT_EQ(second.cache_hits, 3);
}

TEST(BuildCacheTest, SharedAcrossEngineInstances) {
  // The cache is process-wide: a second engine over the same database
  // generation starts warm (the heavy-traffic scenario — many sessions,
  // one resident database).
  DispatchGuard guard;
  cpu::BuildCache::Process().Clear();
  ThreadPool pool(2);
  const query::QuerySpec spec = query::SsbSpec(QueryId::kQ41);

  VectorizedCpuEngine first(TestDb(), pool);
  VectorizedCpuEngine::RunInfo cold;
  first.Run(spec, &cold);
  EXPECT_EQ(cold.cache_builds, 4);

  VectorizedCpuEngine second(TestDb(), pool);
  VectorizedCpuEngine::RunInfo warm;
  EXPECT_TRUE(second.Run(spec, &warm) == RunReference(TestDb(), spec));
  EXPECT_EQ(warm.cache_builds, 0);
  EXPECT_EQ(warm.cache_hits, 4);
}

TEST(BuildCacheTest, FilterVariantsDoNotCollide) {
  // q2.1/q2.2/q2.3 share their (unfiltered) date build but differ in the
  // part filter (category range vs brand range vs brand equality) and
  // supplier region. Keys must separate them — every result must still be
  // exactly the reference — while the shared date build actually hits.
  DispatchGuard guard;
  cpu::BuildCache::Process().Clear();
  ThreadPool pool(2);
  VectorizedCpuEngine engine(TestDb(), pool);

  VectorizedCpuEngine::RunInfo info21;
  EXPECT_TRUE(engine.Run(QueryId::kQ21, &info21) ==
              RunReference(TestDb(), QueryId::kQ21));
  EXPECT_EQ(info21.cache_builds, 3);

  VectorizedCpuEngine::RunInfo info22;
  EXPECT_TRUE(engine.Run(QueryId::kQ22, &info22) ==
              RunReference(TestDb(), QueryId::kQ22));
  // Distinct part/supplier filters rebuild; the identical date side hits.
  EXPECT_EQ(info22.cache_hits, 1);
  EXPECT_EQ(info22.cache_builds, 2);

  VectorizedCpuEngine::RunInfo info23;
  EXPECT_TRUE(engine.Run(QueryId::kQ23, &info23) ==
              RunReference(TestDb(), QueryId::kQ23));
  EXPECT_EQ(info23.cache_hits, 1);
  EXPECT_EQ(info23.cache_builds, 2);

  // Re-running the first query after the interleaving still hits cleanly
  // and still matches — cached sides were not clobbered by the variants.
  VectorizedCpuEngine::RunInfo again;
  EXPECT_TRUE(engine.Run(QueryId::kQ21, &again) ==
              RunReference(TestDb(), QueryId::kQ21));
  EXPECT_EQ(again.cache_builds, 0);
  EXPECT_EQ(again.cache_hits, 3);
}

TEST(BuildCacheTest, GenerationsAreResidentSideBySide) {
  DispatchGuard guard;
  cpu::BuildCache::Process().Clear();
  ThreadPool pool(2);
  const Database other = Generate(1, 1000, /*seed=*/4242);
  const query::QuerySpec spec = query::SsbSpec(QueryId::kQ31);

  VectorizedCpuEngine engine_a(TestDb(), pool);
  VectorizedCpuEngine::RunInfo a1;
  EXPECT_TRUE(engine_a.Run(spec, &a1) == RunReference(TestDb(), spec));
  EXPECT_EQ(a1.cache_builds, 3);

  // A different seed is a different generation: nothing may be reused, and
  // results must match the *new* database's reference.
  VectorizedCpuEngine engine_b(other, pool);
  VectorizedCpuEngine::RunInfo b1;
  EXPECT_TRUE(engine_b.Run(spec, &b1) == RunReference(other, spec));
  EXPECT_EQ(b1.cache_builds, 3);
  EXPECT_EQ(b1.cache_hits, 0);

  // Both generations stay resident (the cache is a small generation LRU,
  // docs/SERVER.md): switching back hits everything warm, and the other
  // generation's entries were not disturbed.
  VectorizedCpuEngine::RunInfo a2;
  EXPECT_TRUE(engine_a.Run(spec, &a2) == RunReference(TestDb(), spec));
  EXPECT_EQ(a2.cache_builds, 0);
  EXPECT_EQ(a2.cache_hits, 3);
  VectorizedCpuEngine::RunInfo b2;
  EXPECT_TRUE(engine_b.Run(spec, &b2) == RunReference(other, spec));
  EXPECT_EQ(b2.cache_builds, 0);
  EXPECT_EQ(b2.cache_hits, 3);
  EXPECT_EQ(cpu::BuildCache::Process().generations(), 2);
}

TEST(BuildCacheTest, GenerationCapacityEvictsLeastRecentlyUsed) {
  DispatchGuard guard;
  cpu::BuildCache& cache = cpu::BuildCache::Process();
  cache.Clear();
  const int saved_capacity = cache.max_generations();
  cache.set_max_generations(2);
  ThreadPool pool(2);
  const Database db_b = Generate(1, 1000, /*seed=*/111);
  const Database db_c = Generate(1, 1000, /*seed=*/222);
  const query::QuerySpec spec = query::SsbSpec(QueryId::kQ31);

  VectorizedCpuEngine engine_a(TestDb(), pool);
  VectorizedCpuEngine engine_b(db_b, pool);
  VectorizedCpuEngine engine_c(db_c, pool);

  VectorizedCpuEngine::RunInfo info;
  engine_a.Run(spec, &info);
  engine_b.Run(spec, &info);
  EXPECT_EQ(cache.generations(), 2);
  EXPECT_EQ(cache.evictions(), 0);

  // Touch A so B becomes the LRU victim, then admit C: only B may go.
  engine_a.Run(spec, &info);
  EXPECT_EQ(info.cache_hits, 3);
  EXPECT_TRUE(engine_c.Run(spec, &info) == RunReference(db_c, spec));
  EXPECT_EQ(cache.generations(), 2);
  EXPECT_EQ(cache.evictions(), 1);

  // A survived the admission of C (no eviction storm of the whole cache):
  // it still hits warm. B was evicted and rebuilds.
  engine_a.Run(spec, &info);
  EXPECT_EQ(info.cache_builds, 0);
  EXPECT_EQ(info.cache_hits, 3);
  engine_b.Run(spec, &info);
  EXPECT_EQ(info.cache_builds, 3);

  cache.set_max_generations(saved_capacity);
  cache.Clear();
}

TEST(BuildCacheTest, PayloadVariantsDoNotCollide) {
  // Same table, same (absent) filters, different carried payload: the date
  // join carries d_year for q4.1-style groupings but d_yearmonthnum for an
  // ad-hoc monthly grouping. The payload column is part of the key.
  DispatchGuard guard;
  cpu::BuildCache::Process().Clear();
  ThreadPool pool(2);
  VectorizedCpuEngine engine(TestDb(), pool);

  const query::QuerySpec yearly =
      Adhoc("sum revenue join date on orderdate group by d_year");
  const query::QuerySpec monthly =
      Adhoc("sum revenue join date on orderdate group by d_yearmonthnum");
  VectorizedCpuEngine::RunInfo info;
  EXPECT_TRUE(engine.Run(yearly, &info) == RunReference(TestDb(), yearly));
  EXPECT_EQ(info.cache_builds, 1);
  EXPECT_TRUE(engine.Run(monthly, &info) == RunReference(TestDb(), monthly));
  EXPECT_EQ(info.cache_builds, 1)
      << "monthly grouping must not reuse the d_year payload table";
  EXPECT_TRUE(engine.Run(yearly, &info) == RunReference(TestDb(), yearly));
  EXPECT_EQ(info.cache_hits, 1);
}

TEST(BuildJoinTableTest, DirectAndHashRepresentationsAgree) {
  // Build both representations of one filtered build side directly and
  // probe them with every kernel path; they must emit identical matches.
  DispatchGuard guard;
  ThreadPool pool(2);
  const Database& db = TestDb();
  const auto pred = [&](int64_t i) {
    return db.p.category[static_cast<size_t>(i)] == 12;
  };

  cpu::SetDirectJoinEnabled(true);
  const cpu::JoinTable direct = cpu::BuildJoinTable(
      db.p.partkey.data(), db.p.brand1.data(), db.p.rows, pred, pool);
  ASSERT_TRUE(direct.is_direct());

  cpu::SetDirectJoinEnabled(false);
  const cpu::JoinTable hash = cpu::BuildJoinTable(
      db.p.partkey.data(), db.p.brand1.data(), db.p.rows, pred, pool);
  ASSERT_FALSE(hash.is_direct());

  const int n = 1024;
  const int32_t* keys = db.lo.partkey.data();
  for (bool simd : {false, true}) {
    if (simd && !cpu::SimdAvailable()) continue;
    cpu::SetSimdEnabled(simd);
    int32_t sel_a[1024], val_a[1024], pos_a[1024];
    int32_t sel_b[1024], val_b[1024], pos_b[1024];
    const int ma =
        cpu::ProbeJoinTable(direct, keys, nullptr, n, sel_a, val_a, pos_a);
    const int mb =
        cpu::ProbeJoinTable(hash, keys, nullptr, n, sel_b, val_b, pos_b);
    ASSERT_EQ(ma, mb) << "simd=" << simd;
    for (int i = 0; i < ma; ++i) {
      EXPECT_EQ(sel_a[i], sel_b[i]);
      EXPECT_EQ(val_a[i], val_b[i]);
      EXPECT_EQ(pos_a[i], pos_b[i]);
    }
  }
}

}  // namespace
}  // namespace crystal::ssb
