// Morsel-boundary parity suite + build-cache correctness for the fused CPU
// engine. The fused pipeline must produce bit-identical results to the
// tuple-at-a-time reference regardless of how the fact table is cut into
// morsels (size 1, odd sizes, non-multiple-of-8 tails, morsels larger than
// the table), how many threads claim them, which SIMD dispatch path runs,
// and which build-side representation (direct-address vs hash) the join
// tables use. The build cache must serve repeated and overlapping specs
// without ever mixing up build sides that differ only in their filters.
#include <gtest/gtest.h>

#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/memory.h"
#include "common/thread_pool.h"
#include "cpu/build_cache.h"
#include "cpu/vector_ops.h"
#include "query/footprint.h"
#include "query/parser.h"
#include "query/pipeline.h"
#include "ssb/datagen.h"
#include "ssb/fused_query.h"
#include "ssb/queries.h"
#include "ssb/vectorized_cpu_engine.h"

namespace crystal::ssb {
namespace {

// SF1 dimensions (full-size build sides) over a 30K-row fact sample: big
// enough to cross many morsel boundaries, small enough for dozens of
// reference-checked configurations.
const Database& TestDb() {
  static const Database* db = new Database(Generate(1, 200));
  return *db;
}

query::QuerySpec Adhoc(const std::string& text) {
  query::QuerySpec spec;
  std::string error;
  EXPECT_TRUE(query::ParseQuerySpec(text, &spec, &error)) << error;
  return spec;
}

/// The specs the parity sweep runs: one per structural shape — scalar
/// aggregate with fact filters only (q1.1), grouped probe cascade (q2.1),
/// IN-set build filter (q3.3), the four-table cascade with a sparse-path
/// grid (q4.3), and an ad-hoc shape carrying two group keys through a
/// later probe (compaction of carried vectors).
std::vector<query::QuerySpec> ParitySpecs() {
  return {
      query::SsbSpec(QueryId::kQ11),
      query::SsbSpec(QueryId::kQ21),
      query::SsbSpec(QueryId::kQ33),
      query::SsbSpec(QueryId::kQ43),
      Adhoc("sum revenue-supplycost join customer on custkey filter "
            "c_region = 3 join part on partkey filter p_mfgr = 5 "
            "group by c_nation, p_category"),
  };
}

/// Restores SIMD + direct-join dispatch state (and drops cached tables
/// built under a scoped representation) when a test section ends.
class DispatchGuard {
 public:
  DispatchGuard()
      : simd_(cpu::SimdEnabled()), direct_(cpu::DirectJoinEnabled()) {}
  ~DispatchGuard() {
    cpu::SetSimdEnabled(simd_);
    cpu::SetDirectJoinEnabled(direct_);
    cpu::BuildCache::Process().Clear();
  }

 private:
  bool simd_;
  bool direct_;
};

struct ParityParam {
  int64_t morsel;
  int threads;
  bool simd;
  bool direct_join;
};

class MorselParityTest : public testing::TestWithParam<ParityParam> {};

TEST_P(MorselParityTest, MatchesReference) {
  const ParityParam p = GetParam();
  if (p.simd && !cpu::SimdAvailable()) GTEST_SKIP() << "no AVX2 host";

  DispatchGuard guard;
  cpu::SetSimdEnabled(p.simd);
  cpu::SetDirectJoinEnabled(p.direct_join);
  // Representation/dispatch toggles apply to future builds only; drop
  // tables built by earlier tests so this configuration builds its own.
  cpu::BuildCache::Process().Clear();

  ThreadPool pool(p.threads);
  VectorizedCpuEngine engine(TestDb(), pool);
  engine.set_morsel_rows(p.morsel);
  for (const query::QuerySpec& spec : ParitySpecs()) {
    const QueryResult want = RunReference(TestDb(), spec);
    const QueryResult got = engine.Run(spec);
    EXPECT_TRUE(got == want)
        << spec.name << " morsel=" << p.morsel << " threads=" << p.threads
        << " simd=" << p.simd << " direct=" << p.direct_join << ": got "
        << got.ToString() << " want " << want.ToString();
  }
}

std::string ParityName(const testing::TestParamInfo<ParityParam>& info) {
  const ParityParam& p = info.param;
  return "morsel" + std::to_string(p.morsel) + "_t" +
         std::to_string(p.threads) + (p.simd ? "_simd" : "_scalar") +
         (p.direct_join ? "_direct" : "_hash");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MorselParityTest,
    testing::ValuesIn(std::vector<ParityParam>{
        // Morsel-size sweep at both SIMD settings, single-threaded: size 1
        // (every row its own morsel), 7 (odd, smaller than a vector), 999
        // (non-multiple-of-8 tail in every morsel), 4096 (vector multiple),
        // and one morsel spanning the whole table.
        {1, 1, true, true},
        {7, 1, true, true},
        {999, 1, true, true},
        {4096, 1, true, true},
        {1 << 20, 1, true, true},
        {1, 1, false, true},
        {999, 1, false, true},
        {4096, 1, false, true},
        // Multi-threaded claiming, both dispatch paths.
        {999, 3, true, true},
        {4096, 3, true, true},
        {4096, 3, false, true},
        // Hash-table build sides (direct addressing disabled) must agree
        // everywhere too.
        {999, 1, true, false},
        {4096, 3, true, false},
        {999, 1, false, false},
    }),
    ParityName);

TEST(BuildCacheTest, SecondExecuteReusesEveryBuildSide) {
  DispatchGuard guard;
  cpu::BuildCache::Process().Clear();
  ThreadPool pool(2);
  VectorizedCpuEngine engine(TestDb(), pool);

  const query::QuerySpec spec = query::SsbSpec(QueryId::kQ21);
  const QueryResult want = RunReference(TestDb(), spec);

  VectorizedCpuEngine::RunInfo first;
  EXPECT_TRUE(engine.Run(spec, &first) == want);
  EXPECT_EQ(first.cache_builds, 3);  // part, supplier, date
  EXPECT_EQ(first.cache_hits, 0);

  VectorizedCpuEngine::RunInfo second;
  EXPECT_TRUE(engine.Run(spec, &second) == want);
  EXPECT_EQ(second.cache_builds, 0);
  EXPECT_EQ(second.cache_hits, 3);
}

TEST(BuildCacheTest, SharedAcrossEngineInstances) {
  // The cache is process-wide: a second engine over the same database
  // generation starts warm (the heavy-traffic scenario — many sessions,
  // one resident database).
  DispatchGuard guard;
  cpu::BuildCache::Process().Clear();
  ThreadPool pool(2);
  const query::QuerySpec spec = query::SsbSpec(QueryId::kQ41);

  VectorizedCpuEngine first(TestDb(), pool);
  VectorizedCpuEngine::RunInfo cold;
  first.Run(spec, &cold);
  EXPECT_EQ(cold.cache_builds, 4);

  VectorizedCpuEngine second(TestDb(), pool);
  VectorizedCpuEngine::RunInfo warm;
  EXPECT_TRUE(second.Run(spec, &warm) == RunReference(TestDb(), spec));
  EXPECT_EQ(warm.cache_builds, 0);
  EXPECT_EQ(warm.cache_hits, 4);
}

TEST(BuildCacheTest, FilterVariantsDoNotCollide) {
  // q2.1/q2.2/q2.3 share their (unfiltered) date build but differ in the
  // part filter (category range vs brand range vs brand equality) and
  // supplier region. Keys must separate them — every result must still be
  // exactly the reference — while the shared date build actually hits.
  DispatchGuard guard;
  cpu::BuildCache::Process().Clear();
  ThreadPool pool(2);
  VectorizedCpuEngine engine(TestDb(), pool);

  VectorizedCpuEngine::RunInfo info21;
  EXPECT_TRUE(engine.Run(QueryId::kQ21, &info21) ==
              RunReference(TestDb(), QueryId::kQ21));
  EXPECT_EQ(info21.cache_builds, 3);

  VectorizedCpuEngine::RunInfo info22;
  EXPECT_TRUE(engine.Run(QueryId::kQ22, &info22) ==
              RunReference(TestDb(), QueryId::kQ22));
  // Distinct part/supplier filters rebuild; the identical date side hits.
  EXPECT_EQ(info22.cache_hits, 1);
  EXPECT_EQ(info22.cache_builds, 2);

  VectorizedCpuEngine::RunInfo info23;
  EXPECT_TRUE(engine.Run(QueryId::kQ23, &info23) ==
              RunReference(TestDb(), QueryId::kQ23));
  EXPECT_EQ(info23.cache_hits, 1);
  EXPECT_EQ(info23.cache_builds, 2);

  // Re-running the first query after the interleaving still hits cleanly
  // and still matches — cached sides were not clobbered by the variants.
  VectorizedCpuEngine::RunInfo again;
  EXPECT_TRUE(engine.Run(QueryId::kQ21, &again) ==
              RunReference(TestDb(), QueryId::kQ21));
  EXPECT_EQ(again.cache_builds, 0);
  EXPECT_EQ(again.cache_hits, 3);
}

TEST(BuildCacheTest, GenerationsAreResidentSideBySide) {
  DispatchGuard guard;
  cpu::BuildCache::Process().Clear();
  ThreadPool pool(2);
  const Database other = Generate(1, 1000, /*seed=*/4242);
  const query::QuerySpec spec = query::SsbSpec(QueryId::kQ31);

  VectorizedCpuEngine engine_a(TestDb(), pool);
  VectorizedCpuEngine::RunInfo a1;
  EXPECT_TRUE(engine_a.Run(spec, &a1) == RunReference(TestDb(), spec));
  EXPECT_EQ(a1.cache_builds, 3);

  // A different seed is a different generation: nothing may be reused, and
  // results must match the *new* database's reference.
  VectorizedCpuEngine engine_b(other, pool);
  VectorizedCpuEngine::RunInfo b1;
  EXPECT_TRUE(engine_b.Run(spec, &b1) == RunReference(other, spec));
  EXPECT_EQ(b1.cache_builds, 3);
  EXPECT_EQ(b1.cache_hits, 0);

  // Both generations stay resident (the cache is a small generation LRU,
  // docs/SERVER.md): switching back hits everything warm, and the other
  // generation's entries were not disturbed.
  VectorizedCpuEngine::RunInfo a2;
  EXPECT_TRUE(engine_a.Run(spec, &a2) == RunReference(TestDb(), spec));
  EXPECT_EQ(a2.cache_builds, 0);
  EXPECT_EQ(a2.cache_hits, 3);
  VectorizedCpuEngine::RunInfo b2;
  EXPECT_TRUE(engine_b.Run(spec, &b2) == RunReference(other, spec));
  EXPECT_EQ(b2.cache_builds, 0);
  EXPECT_EQ(b2.cache_hits, 3);
  EXPECT_EQ(cpu::BuildCache::Process().generations(), 2);
}

TEST(BuildCacheTest, GenerationCapacityEvictsLeastRecentlyUsed) {
  DispatchGuard guard;
  cpu::BuildCache& cache = cpu::BuildCache::Process();
  cache.Clear();
  const int saved_capacity = cache.max_generations();
  cache.set_max_generations(2);
  ThreadPool pool(2);
  const Database db_b = Generate(1, 1000, /*seed=*/111);
  const Database db_c = Generate(1, 1000, /*seed=*/222);
  const query::QuerySpec spec = query::SsbSpec(QueryId::kQ31);

  VectorizedCpuEngine engine_a(TestDb(), pool);
  VectorizedCpuEngine engine_b(db_b, pool);
  VectorizedCpuEngine engine_c(db_c, pool);

  VectorizedCpuEngine::RunInfo info;
  engine_a.Run(spec, &info);
  engine_b.Run(spec, &info);
  EXPECT_EQ(cache.generations(), 2);
  EXPECT_EQ(cache.evictions(), 0);

  // Touch A so B becomes the LRU victim, then admit C: only B may go.
  engine_a.Run(spec, &info);
  EXPECT_EQ(info.cache_hits, 3);
  EXPECT_TRUE(engine_c.Run(spec, &info) == RunReference(db_c, spec));
  EXPECT_EQ(cache.generations(), 2);
  EXPECT_EQ(cache.evictions(), 1);

  // A survived the admission of C (no eviction storm of the whole cache):
  // it still hits warm. B was evicted and rebuilds.
  engine_a.Run(spec, &info);
  EXPECT_EQ(info.cache_builds, 0);
  EXPECT_EQ(info.cache_hits, 3);
  engine_b.Run(spec, &info);
  EXPECT_EQ(info.cache_builds, 3);

  cache.set_max_generations(saved_capacity);
  cache.Clear();
}

TEST(BuildCacheTest, PayloadVariantsDoNotCollide) {
  // Same table, same (absent) filters, different carried payload: the date
  // join carries d_year for q4.1-style groupings but d_yearmonthnum for an
  // ad-hoc monthly grouping. The payload column is part of the key.
  DispatchGuard guard;
  cpu::BuildCache::Process().Clear();
  ThreadPool pool(2);
  VectorizedCpuEngine engine(TestDb(), pool);

  const query::QuerySpec yearly =
      Adhoc("sum revenue join date on orderdate group by d_year");
  const query::QuerySpec monthly =
      Adhoc("sum revenue join date on orderdate group by d_yearmonthnum");
  VectorizedCpuEngine::RunInfo info;
  EXPECT_TRUE(engine.Run(yearly, &info) == RunReference(TestDb(), yearly));
  EXPECT_EQ(info.cache_builds, 1);
  EXPECT_TRUE(engine.Run(monthly, &info) == RunReference(TestDb(), monthly));
  EXPECT_EQ(info.cache_builds, 1)
      << "monthly grouping must not reuse the d_year payload table";
  EXPECT_TRUE(engine.Run(yearly, &info) == RunReference(TestDb(), yearly));
  EXPECT_EQ(info.cache_hits, 1);
}

/// Synthetic direct-address table of exactly `n * 4` bytes, for pressure
/// tests that need precise control over entry sizes.
cpu::JoinTable MakeTable(int64_t n) {
  cpu::JoinTable table;
  table.direct.assign(static_cast<size_t>(n), 0);
  table.base = 0;
  return table;
}

TEST(BuildCachePressureTest, EvictsIdleEntriesLruFirstAndPinnedNever) {
  cpu::BuildCache& cache = cpu::BuildCache::Process();
  cache.Clear();
  const auto build = [] { return MakeTable(256); };  // 1 KiB each
  bool hit = false;
  // a, b: idle after this scope (only the cache holds them).
  ASSERT_TRUE(cache.GetOrBuild("g1", "a", build, &hit).ok());
  ASSERT_TRUE(cache.GetOrBuild("g1", "b", build, &hit).ok());
  // c stays pinned: this test holds its table like a running query would.
  StatusOr<std::shared_ptr<const cpu::JoinTable>> pinned =
      cache.GetOrBuild("g1", "c", build, &hit);
  ASSERT_TRUE(pinned.ok());
  // Touch a, making b the least-recently-used idle entry.
  ASSERT_TRUE(cache.GetOrBuild("g1", "a", build, &hit).ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.evictable_bytes(), 2048);  // a + b; c is pinned

  // One entry's worth of pressure: only the LRU idle entry (b) goes.
  EXPECT_EQ(cache.EvictForPressure(1024, "g1"), 1024);
  EXPECT_TRUE(cache.Contains("g1", "a"));
  EXPECT_FALSE(cache.Contains("g1", "b"));
  EXPECT_TRUE(cache.Contains("g1", "c"));
  EXPECT_EQ(cache.entry_evictions(), 1);

  // Unbounded pressure: every idle entry goes, the pinned one survives.
  EXPECT_EQ(cache.EvictForPressure(1 << 30, "g1"), 1024);
  EXPECT_FALSE(cache.Contains("g1", "a"));
  EXPECT_TRUE(cache.Contains("g1", "c"));
  EXPECT_EQ(cache.entry_evictions(), 2);
  EXPECT_EQ(cache.evictable_bytes(), 0);

  // The evicted entry rebuilds transparently on next use.
  hit = true;
  ASSERT_TRUE(cache.GetOrBuild("g1", "b", build, &hit).ok());
  EXPECT_FALSE(hit);
  cache.Clear();
}

TEST(BuildCachePressureTest, ForeignGenerationsDrainBeforeTheKeptOne) {
  cpu::BuildCache& cache = cpu::BuildCache::Process();
  cache.Clear();
  const auto build = [] { return MakeTable(256); };
  bool hit = false;
  ASSERT_TRUE(cache.GetOrBuild("old", "x", build, &hit).ok());
  ASSERT_TRUE(cache.GetOrBuild("cur", "y", build, &hit).ok());
  // "old" was used less recently than... actually *more* recently below:
  // touch it so recency alone would keep it; generation priority must win.
  ASSERT_TRUE(cache.GetOrBuild("old", "x", build, &hit).ok());
  EXPECT_EQ(cache.EvictForPressure(1024, "cur"), 1024);
  EXPECT_FALSE(cache.Contains("old", "x"));
  EXPECT_TRUE(cache.Contains("cur", "y"));
  cache.Clear();
}

TEST(BuildCachePressureTest, ChargesRideTheTableLifetimeAndReconcile) {
  cpu::BuildCache& cache = cpu::BuildCache::Process();
  cache.Clear();
  MemoryBudget& budget = MemoryBudget::Process();
  const int64_t before = budget.used(MemCategory::kBuildCache);
  bool hit = false;
  {
    StatusOr<std::shared_ptr<const cpu::JoinTable>> held =
        cache.GetOrBuild("g1", "held", [] { return MakeTable(512); }, &hit);
    ASSERT_TRUE(held.ok());
    EXPECT_EQ(budget.used(MemCategory::kBuildCache), before + 2048);
    // Evicting the pinned entry is impossible; the charge stays until the
    // holder lets go, because the memory stays until the holder lets go.
    EXPECT_EQ(cache.EvictForPressure(1 << 30, "g1"), 0);
    EXPECT_EQ(budget.used(MemCategory::kBuildCache), before + 2048);
    // An idle sibling does evict — and only its charge drops.
    ASSERT_TRUE(cache.GetOrBuild("g1", "idle",
                                 [] { return MakeTable(512); }, &hit)
                    .ok());
    EXPECT_EQ(budget.used(MemCategory::kBuildCache), before + 4096);
    EXPECT_EQ(cache.EvictForPressure(1 << 30, "g1"), 2048);  // idle only
    EXPECT_EQ(budget.used(MemCategory::kBuildCache), before + 2048);
  }
  // The holder dropped its reference, but the cache still retains the
  // entry — now idle — so the charge rightly persists until eviction
  // drops the last reference.
  EXPECT_EQ(budget.used(MemCategory::kBuildCache), before + 2048);
  EXPECT_EQ(cache.EvictForPressure(1 << 30, "g1"), 2048);
  EXPECT_EQ(budget.used(MemCategory::kBuildCache), before);

  // A failed build charges nothing and caches nothing.
  const StatusOr<std::shared_ptr<const cpu::JoinTable>> failed =
      cache.GetOrBuild("g1", "boom",
                       []() -> cpu::JoinTable { throw std::bad_alloc(); },
                       &hit);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(cache.Contains("g1", "boom"));
  EXPECT_EQ(budget.used(MemCategory::kBuildCache), before);
  cache.Clear();
}

TEST(BuildCachePressureTest, EvictFaultPointVetoesThePass) {
  cpu::BuildCache& cache = cpu::BuildCache::Process();
  cache.Clear();
  bool hit = false;
  ASSERT_TRUE(
      cache.GetOrBuild("g1", "a", [] { return MakeTable(256); }, &hit).ok());
  ASSERT_TRUE(fault::Install("cache.evict=fail").ok());
  EXPECT_EQ(cache.EvictForPressure(1 << 30, "g1"), 0);
  EXPECT_TRUE(cache.Contains("g1", "a"));
  fault::Clear();
  EXPECT_EQ(cache.EvictForPressure(1 << 30, "g1"), 1024);
  EXPECT_FALSE(cache.Contains("g1", "a"));
  cache.Clear();
}

TEST(FusedQueryDegradationTest, SharedSparseFloorIsBitIdentical) {
  // The degradation ladder end-to-end: with a budget below the preferred
  // per-thread sparse tables but above the one-shared-table floor, Create
  // must degrade (not fail), and the degraded execution must be
  // bit-identical to the reference.
  DispatchGuard guard;
  cpu::BuildCache::Process().Clear();
  MemoryBudget& budget = MemoryBudget::Process();
  ASSERT_EQ(budget.used(), 0);
  const query::QuerySpec spec = query::SsbSpec(QueryId::kQ43);
  const int threads = 4;
  const query::FootprintEstimate estimate =
      query::EstimateFootprint(query::LowerToPipeline(spec, TestDb()), threads);
  ASSERT_FALSE(estimate.dense_preferred);  // q4.3 takes the sparse path
  ASSERT_GT(estimate.sparse_agg_bytes, estimate.shared_agg_bytes);
  budget.set_limit(estimate.shared_agg_bytes +
                   (estimate.sparse_agg_bytes - estimate.shared_agg_bytes) / 2);

  ThreadPool pool(threads);
  StatusOr<std::unique_ptr<FusedQuery>> fused =
      FusedQuery::Create(spec, TestDb(), threads, pool);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_TRUE((*fused)->degraded());
  EXPECT_EQ((*fused)->agg_mode(), FusedQuery::AggMode::kSharedSparse);
  pool.ParallelForMorsels(TestDb().lo.rows, 1024,
                          [&](int t, int64_t begin, int64_t end) {
                            ASSERT_TRUE(
                                (*fused)->RunMorsel(t, begin, end).ok());
                          });
  StatusOr<QueryResult> result = (*fused)->Finish(pool);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(*result == RunReference(TestDb(), spec));

  // Below the floor even the shared table cannot be claimed: the ladder
  // is out of rungs and Create reports resource exhaustion.
  fused->reset();
  cpu::BuildCache::Process().Clear();
  budget.set_limit(1024);
  const StatusOr<std::unique_ptr<FusedQuery>> too_small =
      FusedQuery::Create(spec, TestDb(), threads, pool);
  EXPECT_FALSE(too_small.ok());
  EXPECT_EQ(too_small.status().code(), StatusCode::kResourceExhausted);

  budget.set_limit(0);
  cpu::BuildCache::Process().Clear();
  EXPECT_EQ(budget.used(), 0);  // every claim released
}

TEST(BuildJoinTableTest, DirectAndHashRepresentationsAgree) {
  // Build both representations of one filtered build side directly and
  // probe them with every kernel path; they must emit identical matches.
  DispatchGuard guard;
  ThreadPool pool(2);
  const Database& db = TestDb();
  const auto pred = [&](int64_t i) {
    return db.p.category[static_cast<size_t>(i)] == 12;
  };

  cpu::SetDirectJoinEnabled(true);
  const cpu::JoinTable direct = cpu::BuildJoinTable(
      db.p.partkey.data(), db.p.brand1.data(), db.p.rows, pred, pool);
  ASSERT_TRUE(direct.is_direct());

  cpu::SetDirectJoinEnabled(false);
  const cpu::JoinTable hash = cpu::BuildJoinTable(
      db.p.partkey.data(), db.p.brand1.data(), db.p.rows, pred, pool);
  ASSERT_FALSE(hash.is_direct());

  const int n = 1024;
  const int32_t* keys = db.lo.partkey.data();
  for (bool simd : {false, true}) {
    if (simd && !cpu::SimdAvailable()) continue;
    cpu::SetSimdEnabled(simd);
    int32_t sel_a[1024], val_a[1024], pos_a[1024];
    int32_t sel_b[1024], val_b[1024], pos_b[1024];
    const int ma =
        cpu::ProbeJoinTable(direct, keys, nullptr, n, sel_a, val_a, pos_a);
    const int mb =
        cpu::ProbeJoinTable(hash, keys, nullptr, n, sel_b, val_b, pos_b);
    ASSERT_EQ(ma, mb) << "simd=" << simd;
    for (int i = 0; i < ma; ++i) {
      EXPECT_EQ(sel_a[i], sel_b[i]);
      EXPECT_EQ(val_a[i], val_b[i]);
      EXPECT_EQ(pos_a[i], pos_b[i]);
    }
  }
}

}  // namespace
}  // namespace crystal::ssb
