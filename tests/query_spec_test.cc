#include "query/query_spec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/parser.h"
#include "query/ssb_specs.h"
#include "ssb/query_id.h"

namespace crystal::query {
namespace {

using ssb::QueryId;

// ------------------------------------------------------ canonical specs

TEST(SsbSpecTest, FactColumnsReferencedMatchesHandWrittenValues) {
  // The pre-IR implementation hard-coded 4 columns for flights 1-3 and 6
  // for flight 4; the spec-derived count must reproduce those exactly
  // (they drive the coprocessor PCIe volume, Fig. 3).
  for (QueryId id : ssb::kAllQueries) {
    const QuerySpec spec = SsbSpec(id);
    const int want = ssb::QueryFlight(id) == 4 ? 6 : 4;
    EXPECT_EQ(FactColumnsReferenced(spec), want) << spec.name;
  }
}

TEST(SsbSpecTest, AllCanonicalSpecsValidate) {
  for (QueryId id : ssb::kAllQueries) {
    const QuerySpec spec = SsbSpec(id);
    std::string error;
    EXPECT_TRUE(Validate(spec, &error)) << spec.name << ": " << error;
    EXPECT_EQ(spec.name, ssb::QueryName(id));
  }
}

TEST(SsbSpecTest, FlightShapesMatchThePaper) {
  // Flight 1: fact-only predicates, scalar product aggregate.
  const QuerySpec q11 = SsbSpec(QueryId::kQ11);
  EXPECT_EQ(q11.joins.size(), 0u);
  EXPECT_EQ(q11.fact_filters.size(), 3u);
  EXPECT_TRUE(q11.group_by.empty());
  EXPECT_EQ(q11.agg.kind, AggExpr::Kind::kProduct);

  // Flight 2: three joins, (d_year, p_brand1) grouping.
  const QuerySpec q21 = SsbSpec(QueryId::kQ21);
  EXPECT_EQ(q21.joins.size(), 3u);
  EXPECT_TRUE(q21.fact_filters.empty());
  EXPECT_EQ(q21.group_by,
            (std::vector<DimCol>{DimCol::kDYear, DimCol::kPBrand1}));

  // Flight 4: four joins, profit aggregate.
  const QuerySpec q43 = SsbSpec(QueryId::kQ43);
  EXPECT_EQ(q43.joins.size(), 4u);
  EXPECT_EQ(q43.agg.kind, AggExpr::Kind::kDifference);
  EXPECT_EQ(q43.group_by.size(), 3u);
}

TEST(SsbSpecTest, PayloadPlanWiresGroupKeysToJoins) {
  const QuerySpec q21 = SsbSpec(QueryId::kQ21);
  const PayloadPlan plan = PlanPayloads(q21);
  // Join order is (supplier, part, date); groups are (d_year, p_brand1).
  ASSERT_EQ(plan.join_payload.size(), 3u);
  EXPECT_EQ(plan.join_payload[0], -1);  // supplier: filter-only
  EXPECT_EQ(plan.join_payload[1], 1);   // part -> p_brand1 (slot 1)
  EXPECT_EQ(plan.join_payload[2], 0);   // date -> d_year (slot 0)
  ASSERT_EQ(plan.group_join.size(), 2u);
  EXPECT_EQ(plan.group_join[0], 2);
  EXPECT_EQ(plan.group_join[1], 1);
}

// ------------------------------------------------------- group layouts

TEST(GroupLayoutTest, CellAndKeysAreInverse) {
  const QuerySpec q43 = SsbSpec(QueryId::kQ43);
  const GroupLayout layout = LayoutFor(q43);
  // (d_year, s_city, p_brand1): 7 x 250 x 4441 cells.
  EXPECT_EQ(layout.num_keys, 3);
  EXPECT_EQ(layout.cells, 7ll * 250 * 4441);
  const int32_t keys[3] = {1995, 191, 2239};
  const int64_t cell = layout.CellFor(keys);
  ASSERT_GE(cell, 0);
  ASSERT_LT(cell, layout.cells);
  const std::array<int32_t, 3> back = layout.KeysFor(cell);
  EXPECT_EQ(back[0], 1995);
  EXPECT_EQ(back[1], 191);
  EXPECT_EQ(back[2], 2239);
}

TEST(GroupLayoutTest, ScalarSpecGetsTrivialLayout) {
  const GroupLayout layout = LayoutFor(SsbSpec(QueryId::kQ11));
  EXPECT_TRUE(layout.scalar());
  EXPECT_EQ(layout.cells, 1);
}

// ----------------------------------------------------------- validation

QuerySpec MinimalSpec() {
  QuerySpec spec;
  spec.agg = {AggExpr::Kind::kColumn, FactCol::kRevenue, FactCol::kRevenue};
  return spec;
}

TEST(ValidateTest, RejectsEmptyRanges) {
  QuerySpec spec = MinimalSpec();
  spec.fact_filters.push_back({FactCol::kDiscount, 5, 3});
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("empty range"), std::string::npos);
}

TEST(ValidateTest, RejectsDoubleJoinOfOneTable) {
  QuerySpec spec = MinimalSpec();
  spec.joins.push_back({DimTable::kDate, FactCol::kOrderdate, {}});
  spec.joins.push_back({DimTable::kDate, FactCol::kOrderdate, {}});
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("joined twice"), std::string::npos);
}

TEST(ValidateTest, RejectsFilterOnForeignTable) {
  QuerySpec spec = MinimalSpec();
  JoinSpec join{DimTable::kDate, FactCol::kOrderdate, {}};
  DimFilter filter;
  filter.col = DimCol::kSRegion;  // supplier column on a date join
  join.filters.push_back(filter);
  spec.joins.push_back(join);
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("does not belong"), std::string::npos);
}

TEST(ValidateTest, RejectsGroupColumnWithoutJoin) {
  QuerySpec spec = MinimalSpec();
  spec.group_by.push_back(DimCol::kDYear);
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("requires a join"), std::string::npos);
}

TEST(ValidateTest, RejectsOversizedAggregationGrids) {
  // (d_yearmonthnum, c_city, p_brand1) is structurally fine but its dense
  // grid would need 612 * 250 * 4441 cells (~5.4 GB of int64, per worker
  // thread in the vectorized engine) — Validate must refuse, not OOM.
  QuerySpec spec = MinimalSpec();
  spec.joins.push_back({DimTable::kDate, FactCol::kOrderdate, {}});
  spec.joins.push_back({DimTable::kCustomer, FactCol::kCustkey, {}});
  spec.joins.push_back({DimTable::kPart, FactCol::kPartkey, {}});
  spec.group_by = {DimCol::kDYearmonthnum, DimCol::kCCity, DimCol::kPBrand1};
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("grid too large"), std::string::npos);

  // The canonical worst case stays comfortably inside the cap.
  EXPECT_LE(LayoutFor(SsbSpec(QueryId::kQ43)).cells, kMaxGroupCells);
}

TEST(ValidateTest, RejectsTwoGroupColumnsFromOneTable) {
  QuerySpec spec = MinimalSpec();
  spec.joins.push_back({DimTable::kDate, FactCol::kOrderdate, {}});
  spec.group_by = {DimCol::kDYear, DimCol::kDYearmonthnum};
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("more than one group column"), std::string::npos);
}

// -------------------------------------------------------------- parser

TEST(ParseQuerySpecTest, RoundTripsEveryCanonicalSpec) {
  for (QueryId id : ssb::kAllQueries) {
    const QuerySpec spec = SsbSpec(id);
    const std::string text = FormatQuerySpec(spec);
    QuerySpec parsed;
    std::string error;
    ASSERT_TRUE(ParseQuerySpec(text, &parsed, &error))
        << spec.name << ": " << error << "\n  " << text;
    EXPECT_TRUE(parsed == spec) << spec.name << "\n  " << text << "\n  vs\n  "
                                << FormatQuerySpec(parsed);
  }
}

TEST(ParseQuerySpecTest, ParsesTheReadmeExample) {
  QuerySpec spec;
  std::string error;
  ASSERT_TRUE(ParseQuerySpec(
      "sum revenue join supplier on suppkey filter s_region = 1 "
      "join part on partkey filter p_category = 12 "
      "join date on orderdate group by d_year, p_brand1",
      &spec, &error))
      << error;
  EXPECT_TRUE(spec == SsbSpec(QueryId::kQ21));
}

TEST(ParseQuerySpecTest, DefaultsJoinKeyAndAcceptsLoPrefix) {
  QuerySpec spec;
  std::string error;
  ASSERT_TRUE(ParseQuerySpec(
      "sum lo_revenue join supplier filter s_region = 2", &spec, &error))
      << error;
  ASSERT_EQ(spec.joins.size(), 1u);
  EXPECT_EQ(spec.joins[0].fact_key, FactCol::kSuppkey);
  EXPECT_EQ(spec.agg.a, FactCol::kRevenue);
}

TEST(ParseQuerySpecTest, ErrorPaths) {
  QuerySpec spec;
  std::string error;

  EXPECT_FALSE(ParseQuerySpec("", &spec, &error));
  EXPECT_NE(error.find("must start with 'sum'"), std::string::npos);

  EXPECT_FALSE(ParseQuerySpec("sum gold", &spec, &error));
  EXPECT_NE(error.find("unknown fact column 'gold'"), std::string::npos);

  EXPECT_FALSE(ParseQuerySpec("sum revenue where discount in 1..", &spec,
                              &error));
  EXPECT_NE(error.find("after '..'"), std::string::npos);

  EXPECT_FALSE(ParseQuerySpec("sum revenue where discount between 1 3",
                              &spec, &error));
  EXPECT_NE(error.find("expected '=' or 'in'"), std::string::npos);

  EXPECT_FALSE(ParseQuerySpec("sum revenue join warehouse", &spec, &error));
  EXPECT_NE(error.find("unknown dimension table 'warehouse'"),
            std::string::npos);

  EXPECT_FALSE(ParseQuerySpec(
      "sum revenue join supplier filter s_city in {191, 195", &spec,
      &error));
  EXPECT_NE(error.find("'}'"), std::string::npos);

  EXPECT_FALSE(ParseQuerySpec("sum revenue group by d_year", &spec, &error));
  EXPECT_NE(error.find("requires a join"), std::string::npos);  // Validate

  EXPECT_FALSE(ParseQuerySpec("sum revenue bogus-clause", &spec, &error));
  EXPECT_NE(error.find("expected 'where', 'join', or 'group by'"),
            std::string::npos);

  // IN sets are a build-side (dimension) feature only.
  EXPECT_FALSE(ParseQuerySpec("sum revenue where quantity in {1, 2}", &spec,
                              &error));
  EXPECT_NE(error.find("build-side"), std::string::npos);
}

TEST(ParseQuerySpecTest, PureScanAndExpressionForms) {
  QuerySpec spec;
  std::string error;
  ASSERT_TRUE(ParseQuerySpec("sum revenue", &spec, &error)) << error;
  EXPECT_TRUE(spec.fact_filters.empty());
  EXPECT_TRUE(spec.joins.empty());

  ASSERT_TRUE(ParseQuerySpec("sum extendedprice*discount", &spec, &error));
  EXPECT_EQ(spec.agg.kind, AggExpr::Kind::kProduct);
  ASSERT_TRUE(ParseQuerySpec("sum revenue-supplycost", &spec, &error));
  EXPECT_EQ(spec.agg.kind, AggExpr::Kind::kDifference);
}

// ------------------------------------------------------- name bindings

TEST(NamesTest, EveryColumnNameRoundTrips) {
  for (int i = 0; i < kNumFactCols; ++i) {
    const FactCol col = static_cast<FactCol>(i);
    FactCol back;
    ASSERT_TRUE(FactColFromName(FactColName(col), &back));
    EXPECT_EQ(back, col);
  }
  for (int i = 0; i < kNumDimCols; ++i) {
    const DimCol col = static_cast<DimCol>(i);
    DimCol back;
    ASSERT_TRUE(DimColFromName(DimColName(col), &back));
    EXPECT_EQ(back, col);
    int32_t lo, hi;
    DimColDomain(col, &lo, &hi);
    EXPECT_LE(lo, hi) << DimColName(col);
  }
  for (int i = 0; i < kNumDimTables; ++i) {
    const DimTable table = static_cast<DimTable>(i);
    DimTable back;
    ASSERT_TRUE(DimTableFromName(DimTableName(table), &back));
    EXPECT_EQ(back, table);
  }
}

}  // namespace
}  // namespace crystal::query
