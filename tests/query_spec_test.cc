#include "query/query_spec.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/parser.h"
#include "query/ssb_specs.h"
#include "ssb/query_id.h"

namespace crystal::query {
namespace {

using ssb::QueryId;

// ------------------------------------------------------ canonical specs

TEST(SsbSpecTest, FactColumnsReferencedMatchesHandWrittenValues) {
  // The pre-IR implementation hard-coded 4 columns for flights 1-3 and 6
  // for flight 4; the spec-derived count must reproduce those exactly
  // (they drive the coprocessor PCIe volume, Fig. 3).
  for (QueryId id : ssb::kAllQueries) {
    const QuerySpec spec = SsbSpec(id);
    const int want = ssb::QueryFlight(id) == 4 ? 6 : 4;
    EXPECT_EQ(FactColumnsReferenced(spec), want) << spec.name;
  }
}

TEST(SsbSpecTest, AllCanonicalSpecsValidate) {
  for (QueryId id : ssb::kAllQueries) {
    const QuerySpec spec = SsbSpec(id);
    std::string error;
    EXPECT_TRUE(Validate(spec, &error)) << spec.name << ": " << error;
    EXPECT_EQ(spec.name, ssb::QueryName(id));
  }
}

TEST(SsbSpecTest, FlightShapesMatchThePaper) {
  // Flight 1: fact-only predicates, scalar product aggregate.
  const QuerySpec q11 = SsbSpec(QueryId::kQ11);
  EXPECT_EQ(q11.joins.size(), 0u);
  EXPECT_EQ(q11.fact_filters.size(), 3u);
  EXPECT_TRUE(q11.group_by.empty());
  ASSERT_EQ(q11.aggs.size(), 1u);
  EXPECT_EQ(q11.aggs[0].func, AggFunc::kSum);
  EXPECT_TRUE(q11.aggs[0].expr ==
              BinExpr(Expr::Op::kMul, ColExpr(FactCol::kExtendedprice),
                      ColExpr(FactCol::kDiscount)));

  // Flight 2: three joins, (d_year, p_brand1) grouping.
  const QuerySpec q21 = SsbSpec(QueryId::kQ21);
  EXPECT_EQ(q21.joins.size(), 3u);
  EXPECT_TRUE(q21.fact_filters.empty());
  EXPECT_EQ(q21.group_by,
            (std::vector<DimCol>{DimCol::kDYear, DimCol::kPBrand1}));

  // Flight 4: four joins, profit aggregate.
  const QuerySpec q43 = SsbSpec(QueryId::kQ43);
  EXPECT_EQ(q43.joins.size(), 4u);
  ASSERT_EQ(q43.aggs.size(), 1u);
  EXPECT_TRUE(q43.aggs[0].expr ==
              BinExpr(Expr::Op::kSub, ColExpr(FactCol::kRevenue),
                      ColExpr(FactCol::kSupplycost)));
  EXPECT_EQ(q43.group_by.size(), 3u);
}

TEST(SsbSpecTest, PayloadPlanWiresGroupKeysToJoins) {
  const QuerySpec q21 = SsbSpec(QueryId::kQ21);
  const PayloadPlan plan = PlanPayloads(q21);
  // Join order is (supplier, part, date); groups are (d_year, p_brand1).
  ASSERT_EQ(plan.join_payload.size(), 3u);
  EXPECT_EQ(plan.join_payload[0], -1);  // supplier: filter-only
  EXPECT_EQ(plan.join_payload[1], 1);   // part -> p_brand1 (slot 1)
  EXPECT_EQ(plan.join_payload[2], 0);   // date -> d_year (slot 0)
  ASSERT_EQ(plan.group_join.size(), 2u);
  EXPECT_EQ(plan.group_join[0], 2);
  EXPECT_EQ(plan.group_join[1], 1);
}

// ------------------------------------------------------- group layouts

TEST(GroupLayoutTest, CellAndKeysAreInverse) {
  const QuerySpec q43 = SsbSpec(QueryId::kQ43);
  const GroupLayout layout = LayoutFor(q43);
  // (d_year, s_city, p_brand1): 7 x 250 x 4441 cells.
  EXPECT_EQ(layout.num_keys, 3);
  EXPECT_EQ(layout.cells, 7ll * 250 * 4441);
  const int32_t keys[3] = {1995, 191, 2239};
  const int64_t cell = layout.CellFor(keys);
  ASSERT_GE(cell, 0);
  ASSERT_LT(cell, layout.cells);
  const std::array<int32_t, 3> back = layout.KeysFor(cell);
  EXPECT_EQ(back[0], 1995);
  EXPECT_EQ(back[1], 191);
  EXPECT_EQ(back[2], 2239);
}

TEST(GroupLayoutTest, ScalarSpecGetsTrivialLayout) {
  const GroupLayout layout = LayoutFor(SsbSpec(QueryId::kQ11));
  EXPECT_TRUE(layout.scalar());
  EXPECT_EQ(layout.cells, 1);
}

// ----------------------------------------------------------- validation

QuerySpec MinimalSpec() {
  QuerySpec spec;
  spec.aggs = {Sum(ColExpr(FactCol::kRevenue))};
  return spec;
}

TEST(ValidateTest, RejectsEmptyRanges) {
  QuerySpec spec = MinimalSpec();
  spec.fact_filters.push_back({FactCol::kDiscount, 5, 3});
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("empty range"), std::string::npos);
}

TEST(ValidateTest, RejectsDoubleJoinOfOneTable) {
  QuerySpec spec = MinimalSpec();
  spec.joins.push_back({DimTable::kDate, FactCol::kOrderdate, {}});
  spec.joins.push_back({DimTable::kDate, FactCol::kOrderdate, {}});
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("joined twice"), std::string::npos);
}

TEST(ValidateTest, RejectsFilterOnForeignTable) {
  QuerySpec spec = MinimalSpec();
  JoinSpec join{DimTable::kDate, FactCol::kOrderdate, {}};
  DimFilter filter;
  filter.col = DimCol::kSRegion;  // supplier column on a date join
  join.filters.push_back(filter);
  spec.joins.push_back(join);
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("does not belong"), std::string::npos);
}

TEST(ValidateTest, RejectsGroupColumnWithoutJoin) {
  QuerySpec spec = MinimalSpec();
  spec.group_by.push_back(DimCol::kDYear);
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("requires a join"), std::string::npos);
}

TEST(ValidateTest, RejectsOversizedAggregationGrids) {
  // (d_yearmonthnum, c_city, p_brand1) is structurally fine but its dense
  // grid would need 612 * 250 * 4441 cells (~5.4 GB of int64, per worker
  // thread in the vectorized engine) — Validate must refuse, not OOM.
  QuerySpec spec = MinimalSpec();
  spec.joins.push_back({DimTable::kDate, FactCol::kOrderdate, {}});
  spec.joins.push_back({DimTable::kCustomer, FactCol::kCustkey, {}});
  spec.joins.push_back({DimTable::kPart, FactCol::kPartkey, {}});
  spec.group_by = {DimCol::kDYearmonthnum, DimCol::kCCity, DimCol::kPBrand1};
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("grid too large"), std::string::npos);

  // The canonical worst case stays comfortably inside the cap.
  EXPECT_LE(LayoutFor(SsbSpec(QueryId::kQ43)).cells, kMaxGroupCells);
}

TEST(ValidateTest, RejectsTwoGroupColumnsFromOneTable) {
  QuerySpec spec = MinimalSpec();
  spec.joins.push_back({DimTable::kDate, FactCol::kOrderdate, {}});
  spec.group_by = {DimCol::kDYear, DimCol::kDYearmonthnum};
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("more than one group column"), std::string::npos);
}

// -------------------------------------------------------------- parser

TEST(ParseQuerySpecTest, RoundTripsEveryCanonicalSpec) {
  for (QueryId id : ssb::kAllQueries) {
    const QuerySpec spec = SsbSpec(id);
    const std::string text = FormatQuerySpec(spec);
    QuerySpec parsed;
    std::string error;
    ASSERT_TRUE(ParseQuerySpec(text, &parsed, &error))
        << spec.name << ": " << error << "\n  " << text;
    EXPECT_TRUE(parsed == spec) << spec.name << "\n  " << text << "\n  vs\n  "
                                << FormatQuerySpec(parsed);
  }
}

TEST(ParseQuerySpecTest, ParsesTheReadmeExample) {
  QuerySpec spec;
  std::string error;
  ASSERT_TRUE(ParseQuerySpec(
      "sum revenue join supplier on suppkey filter s_region = 1 "
      "join part on partkey filter p_category = 12 "
      "join date on orderdate group by d_year, p_brand1",
      &spec, &error))
      << error;
  EXPECT_TRUE(spec == SsbSpec(QueryId::kQ21));
}

TEST(ParseQuerySpecTest, DefaultsJoinKeyAndAcceptsLoPrefix) {
  QuerySpec spec;
  std::string error;
  ASSERT_TRUE(ParseQuerySpec(
      "sum lo_revenue join supplier filter s_region = 2", &spec, &error))
      << error;
  ASSERT_EQ(spec.joins.size(), 1u);
  EXPECT_EQ(spec.joins[0].fact_key, FactCol::kSuppkey);
  ASSERT_EQ(spec.aggs.size(), 1u);
  EXPECT_TRUE(spec.aggs[0].expr == ColExpr(FactCol::kRevenue));
}

TEST(ParseQuerySpecTest, ErrorPaths) {
  QuerySpec spec;
  std::string error;

  EXPECT_FALSE(ParseQuerySpec("", &spec, &error));
  EXPECT_NE(error.find("unknown aggregate function"), std::string::npos);

  EXPECT_FALSE(ParseQuerySpec("total revenue", &spec, &error));
  EXPECT_NE(error.find("unknown aggregate function 'total'"),
            std::string::npos);

  EXPECT_FALSE(ParseQuerySpec("sum gold", &spec, &error));
  EXPECT_NE(error.find("unknown fact column 'gold'"), std::string::npos);

  EXPECT_FALSE(ParseQuerySpec("sum revenue where discount in 1..", &spec,
                              &error));
  EXPECT_NE(error.find("after '..'"), std::string::npos);

  EXPECT_FALSE(ParseQuerySpec("sum revenue where discount between 1 3",
                              &spec, &error));
  EXPECT_NE(error.find("expected '=' or 'in'"), std::string::npos);

  EXPECT_FALSE(ParseQuerySpec("sum revenue join warehouse", &spec, &error));
  EXPECT_NE(error.find("unknown dimension table 'warehouse'"),
            std::string::npos);

  EXPECT_FALSE(ParseQuerySpec(
      "sum revenue join supplier filter s_city in {191, 195", &spec,
      &error));
  EXPECT_NE(error.find("'}'"), std::string::npos);

  EXPECT_FALSE(ParseQuerySpec("sum revenue group by d_year", &spec, &error));
  EXPECT_NE(error.find("requires a join"), std::string::npos);  // Validate

  EXPECT_FALSE(ParseQuerySpec("sum revenue bogus-clause", &spec, &error));
  EXPECT_NE(error.find("expected 'where', 'join', or 'group by'"),
            std::string::npos);

  // IN sets are a build-side (dimension) feature only.
  EXPECT_FALSE(ParseQuerySpec("sum revenue where quantity in {1, 2}", &spec,
                              &error));
  EXPECT_NE(error.find("build-side"), std::string::npos);
}

TEST(ParseQuerySpecTest, PureScanAndExpressionForms) {
  QuerySpec spec;
  std::string error;
  ASSERT_TRUE(ParseQuerySpec("sum revenue", &spec, &error)) << error;
  EXPECT_TRUE(spec.fact_filters.empty());
  EXPECT_TRUE(spec.joins.empty());

  ASSERT_TRUE(ParseQuerySpec("sum extendedprice*discount", &spec, &error));
  EXPECT_TRUE(spec.aggs[0].expr ==
              BinExpr(Expr::Op::kMul, ColExpr(FactCol::kExtendedprice),
                      ColExpr(FactCol::kDiscount)));
  ASSERT_TRUE(ParseQuerySpec("sum revenue-supplycost", &spec, &error));
  EXPECT_TRUE(spec.aggs[0].expr ==
              BinExpr(Expr::Op::kSub, ColExpr(FactCol::kRevenue),
                      ColExpr(FactCol::kSupplycost)));
}

TEST(ParseQuerySpecTest, ExpressionPrecedenceAndParens) {
  QuerySpec spec;
  std::string error;
  // '*' binds tighter than '-'; parens override.
  ASSERT_TRUE(ParseQuerySpec("sum extendedprice*(100-discount)", &spec,
                             &error))
      << error;
  const Expr want =
      BinExpr(Expr::Op::kMul, ColExpr(FactCol::kExtendedprice),
              BinExpr(Expr::Op::kSub, ConstExpr(100),
                      ColExpr(FactCol::kDiscount)));
  EXPECT_TRUE(spec.aggs[0].expr == want);

  ASSERT_TRUE(ParseQuerySpec("sum revenue-supplycost*discount", &spec,
                             &error));
  EXPECT_TRUE(spec.aggs[0].expr ==
              BinExpr(Expr::Op::kSub, ColExpr(FactCol::kRevenue),
                      BinExpr(Expr::Op::kMul, ColExpr(FactCol::kSupplycost),
                              ColExpr(FactCol::kDiscount))));

  // Left-associativity survives the round trip structurally: a-(b-c) needs
  // its parens back, a-b-c does not.
  ASSERT_TRUE(ParseQuerySpec("sum revenue-(supplycost-discount)", &spec,
                             &error));
  EXPECT_EQ(FormatQuerySpec(spec), "sum revenue-(supplycost-discount)");
  ASSERT_TRUE(ParseQuerySpec("sum revenue-supplycost-discount", &spec,
                             &error));
  EXPECT_EQ(FormatQuerySpec(spec), "sum revenue-supplycost-discount");
}

TEST(ParseQuerySpecTest, MultiAggregateListRoundTrips) {
  QuerySpec spec;
  std::string error;
  const std::string text =
      "sum quantity, avg discount, count, min revenue, max revenue";
  ASSERT_TRUE(ParseQuerySpec(text, &spec, &error)) << error;
  ASSERT_EQ(spec.aggs.size(), 5u);
  EXPECT_EQ(spec.aggs[0].func, AggFunc::kSum);
  EXPECT_EQ(spec.aggs[1].func, AggFunc::kAvg);
  EXPECT_EQ(spec.aggs[2].func, AggFunc::kCount);
  EXPECT_EQ(spec.aggs[3].func, AggFunc::kMin);
  EXPECT_EQ(spec.aggs[4].func, AggFunc::kMax);
  EXPECT_EQ(FormatQuerySpec(spec), text);
}

TEST(ParseQuerySpecTest, LikePredicatesRoundTrip) {
  QuerySpec spec;
  std::string error;
  ASSERT_TRUE(ParseQuerySpec(
      "sum revenue join supplier on suppkey filter s_nation like 'UNITED%'",
      &spec, &error))
      << error;
  ASSERT_EQ(spec.joins.size(), 1u);
  ASSERT_EQ(spec.joins[0].filters.size(), 1u);
  EXPECT_EQ(spec.joins[0].filters[0].str_match, DimFilter::StrMatch::kPrefix);
  EXPECT_EQ(spec.joins[0].filters[0].pattern, "UNITED");
  EXPECT_EQ(FormatQuerySpec(spec),
            "sum revenue join supplier on suppkey filter s_nation like "
            "'UNITED%'");

  ASSERT_TRUE(ParseQuerySpec(
      "sum revenue join customer on custkey filter c_city like '%KI%'",
      &spec, &error))
      << error;
  EXPECT_EQ(spec.joins[0].filters[0].str_match,
            DimFilter::StrMatch::kContains);
  EXPECT_EQ(spec.joins[0].filters[0].pattern, "KI");
  EXPECT_EQ(FormatQuerySpec(spec),
            "sum revenue join customer on custkey filter c_city like "
            "'%KI%'");
}

TEST(ParseQuerySpecTest, LikeErrorPaths) {
  QuerySpec spec;
  std::string error;
  EXPECT_FALSE(ParseQuerySpec(
      "sum revenue join supplier filter s_nation like UNITED", &spec,
      &error));
  EXPECT_NE(error.find("expected a quoted pattern"), std::string::npos);

  EXPECT_FALSE(ParseQuerySpec(
      "sum revenue join supplier filter s_nation like 'UNITED'", &spec,
      &error));
  EXPECT_NE(error.find("prefix 'FOO%' or substring '%FOO%'"),
            std::string::npos);

  // d_year has no dictionary; LIKE cannot bind (Validate).
  EXPECT_FALSE(ParseQuerySpec(
      "sum revenue join date filter d_year like '19%'", &spec, &error));
  EXPECT_NE(error.find("no string dictionary"), std::string::npos);
}

TEST(ParseQuerySpecTest, CaretDiagnosticsPointAtTheOffendingToken) {
  QuerySpec spec;
  ParseDiagnostic diag;
  ASSERT_FALSE(ParseQuerySpec("sum gold", &spec, &diag));
  EXPECT_EQ(diag.position, 4u);
  const std::string caret = CaretDiagnostic("sum gold", diag);
  EXPECT_NE(caret.find("error: unknown fact column 'gold'"),
            std::string::npos);
  EXPECT_NE(caret.find("\n  sum gold\n      ^"), std::string::npos);

  ASSERT_FALSE(ParseQuerySpec("median revenue", &spec, &diag));
  EXPECT_EQ(diag.position, 0u);

  // Semantic (Validate) failures carry no position; no caret is drawn.
  ASSERT_FALSE(ParseQuerySpec("sum revenue group by d_year", &spec, &diag));
  EXPECT_EQ(diag.position, ParseDiagnostic::kNoPosition);
  EXPECT_EQ(CaretDiagnostic("sum revenue group by d_year", diag).find('\n'),
            std::string::npos);
}

TEST(ParseQuerySpecTest, TpchAnalogsValidateAndRoundTrip) {
  for (const QuerySpec& spec : {TpchQ1Analog(), TpchQ6Analog()}) {
    std::string error;
    EXPECT_TRUE(Validate(spec, &error)) << spec.name << ": " << error;
    const std::string text = FormatQuerySpec(spec);
    QuerySpec parsed;
    ASSERT_TRUE(ParseQuerySpec(text, &parsed, &error))
        << spec.name << ": " << error << "\n  " << text;
    EXPECT_TRUE(parsed == spec) << spec.name << "\n  " << text;
    // Format o Parse is a fixed point: reformatting changes nothing.
    EXPECT_EQ(FormatQuerySpec(parsed), text) << spec.name;
  }
}

// --------------------------------------------------- aggregate planning

TEST(AggPlanTest, AvgExpandsToSumCountPair) {
  QuerySpec spec;
  spec.aggs = {Avg(ColExpr(FactCol::kQuantity))};
  const AggPlan plan = PlanAggs(spec);
  ASSERT_EQ(plan.num_slots(), 2);
  EXPECT_EQ(plan.slots[0].func, AggFunc::kSum);
  EXPECT_EQ(plan.slots[1].func, AggFunc::kCount);
  EXPECT_TRUE(plan.slots[0].emitted);
  EXPECT_TRUE(plan.slots[1].emitted);
  EXPECT_EQ(plan.count_slot, 1);
  EXPECT_EQ(plan.num_emitted, 2);
}

TEST(AggPlanTest, MinMaxGetHiddenLivenessCount) {
  QuerySpec spec;
  spec.aggs = {Min(ColExpr(FactCol::kRevenue))};
  const AggPlan plan = PlanAggs(spec);
  ASSERT_EQ(plan.num_slots(), 2);
  EXPECT_EQ(plan.slots[0].func, AggFunc::kMin);
  EXPECT_EQ(plan.slots[1].func, AggFunc::kCount);
  EXPECT_FALSE(plan.slots[1].emitted);  // liveness only
  EXPECT_EQ(plan.count_slot, 1);
  EXPECT_EQ(plan.num_emitted, 1);
  // Identities: MIN starts at +inf, the hidden count at zero.
  int64_t row[2];
  FillIdentity(plan, row, 1);
  EXPECT_EQ(row[0], INT64_MAX);
  EXPECT_EQ(row[1], 0);
}

TEST(AggPlanTest, TpchQ1PlanEmitsEightValues) {
  const AggPlan plan = PlanAggs(TpchQ1Analog());
  EXPECT_EQ(plan.num_slots(), 8);
  EXPECT_EQ(plan.num_emitted, 8);
  // The first explicit count is the liveness slot; the AVG expansions put
  // one at index 4 (slots: sum, sum, sum, avg-sum, avg-count, ...).
  EXPECT_EQ(plan.count_slot, 4);
}

TEST(AggPlanTest, LegacySingleSumKeepsOneSlot) {
  const AggPlan plan = PlanAggs(SsbSpec(QueryId::kQ21));
  EXPECT_EQ(plan.num_slots(), 1);
  EXPECT_EQ(plan.count_slot, -1);
  // All-SUM liveness: any non-zero value marks the cell live.
  const int64_t live[1] = {5};
  const int64_t dead[1] = {0};
  EXPECT_TRUE(plan.CellLive(live));
  EXPECT_FALSE(plan.CellLive(dead));
}

// ------------------------------------------- checked 64-bit accumulation

TEST(CheckedAccumulationTest, SumOverflowsExactlyAtTheBoundary) {
  int64_t acc = INT64_MAX - 1;
  EXPECT_TRUE(AggAccumulate(AggFunc::kSum, &acc, 1));
  EXPECT_EQ(acc, INT64_MAX);
  EXPECT_FALSE(AggAccumulate(AggFunc::kSum, &acc, 1));  // would wrap

  acc = INT64_MIN + 1;
  EXPECT_TRUE(AggAccumulate(AggFunc::kSum, &acc, -1));
  EXPECT_FALSE(AggAccumulate(AggFunc::kSum, &acc, -1));
}

TEST(CheckedAccumulationTest, MinMaxFoldNeverOverflows) {
  int64_t acc = INT64_MAX;  // MIN identity
  EXPECT_TRUE(AggAccumulate(AggFunc::kMin, &acc, INT64_MIN));
  EXPECT_EQ(acc, INT64_MIN);
  acc = INT64_MIN;  // MAX identity
  EXPECT_TRUE(AggAccumulate(AggFunc::kMax, &acc, INT64_MAX));
  EXPECT_EQ(acc, INT64_MAX);
}

TEST(CheckedAccumulationTest, EvalExprDetectsMultiplyOverflow) {
  const Expr expr = BinExpr(Expr::Op::kMul, ColExpr(FactCol::kRevenue),
                            ColExpr(FactCol::kRevenue));
  int64_t out = 0;
  EXPECT_TRUE(EvalExpr(
      expr, [](FactCol) { return int64_t{3037000499}; }, &out));
  EXPECT_EQ(out, int64_t{3037000499} * 3037000499);
  // One past the integer square root of INT64_MAX overflows.
  EXPECT_FALSE(EvalExpr(
      expr, [](FactCol) { return int64_t{3037000500}; }, &out));
}

// ------------------------------------------------ dictionary resolution

TEST(DictFilterTest, PrefixResolvesToSortedCodeSet) {
  const std::vector<int32_t>* codes = ResolveDictFilter(
      DimCol::kSNation, DimFilter::StrMatch::kPrefix, "UNITED");
  ASSERT_NE(codes, nullptr);
  // UNITED KINGDOM and UNITED STATES.
  EXPECT_EQ(codes->size(), 2u);
  for (size_t i = 1; i < codes->size(); ++i) {
    EXPECT_LT((*codes)[i - 1], (*codes)[i]);
  }
  // The resolver caches: the same predicate returns the same vector.
  EXPECT_EQ(codes, ResolveDictFilter(DimCol::kSNation,
                                     DimFilter::StrMatch::kPrefix, "UNITED"));
}

TEST(DictFilterTest, ContainsMatchesSubstringsAcrossTheDomain) {
  const std::vector<int32_t>* codes = ResolveDictFilter(
      DimCol::kCRegion, DimFilter::StrMatch::kContains, "AMERICA");
  ASSERT_NE(codes, nullptr);
  EXPECT_EQ(codes->size(), 1u);  // AMERICA itself (substring of no other)
  const std::vector<int32_t>* none = ResolveDictFilter(
      DimCol::kCRegion, DimFilter::StrMatch::kPrefix, "ZZZ");
  ASSERT_NE(none, nullptr);
  EXPECT_TRUE(none->empty());
}

TEST(ValidateTest, RejectsBadAggregateLists) {
  QuerySpec spec;
  std::string error;
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("no aggregates"), std::string::npos);

  spec.aggs = {AggSpec{AggFunc::kCount, ColExpr(FactCol::kRevenue)}};
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("count takes no expression"), std::string::npos);

  spec.aggs = {AggSpec{AggFunc::kSum, Expr{}}};
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("requires an expression"), std::string::npos);

  spec.aggs = {Sum(ConstExpr(-5))};
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("negative constants"), std::string::npos);

  // 9 AVGs expand to 18 slots, over the 16-slot budget.
  spec.aggs.assign(9, Avg(ColExpr(FactCol::kRevenue)));
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("too many aggregate values"), std::string::npos);

  // An expression over the node budget (32 leaves -> 63 nodes).
  Expr big = ColExpr(FactCol::kRevenue);
  for (int i = 0; i < 31; ++i) {
    big = BinExpr(Expr::Op::kAdd, std::move(big), ColExpr(FactCol::kRevenue));
  }
  spec.aggs = {Sum(std::move(big))};
  EXPECT_FALSE(Validate(spec, &error));
  EXPECT_NE(error.find("expression too large"), std::string::npos);
}

// ------------------------------------------------------- name bindings

TEST(NamesTest, EveryColumnNameRoundTrips) {
  for (int i = 0; i < kNumFactCols; ++i) {
    const FactCol col = static_cast<FactCol>(i);
    FactCol back;
    ASSERT_TRUE(FactColFromName(FactColName(col), &back));
    EXPECT_EQ(back, col);
  }
  for (int i = 0; i < kNumDimCols; ++i) {
    const DimCol col = static_cast<DimCol>(i);
    DimCol back;
    ASSERT_TRUE(DimColFromName(DimColName(col), &back));
    EXPECT_EQ(back, col);
    int32_t lo, hi;
    DimColDomain(col, &lo, &hi);
    EXPECT_LE(lo, hi) << DimColName(col);
  }
  for (int i = 0; i < kNumDimTables; ++i) {
    const DimTable table = static_cast<DimTable>(i);
    DimTable back;
    ASSERT_TRUE(DimTableFromName(DimTableName(table), &back));
    EXPECT_EQ(back, table);
  }
}

}  // namespace
}  // namespace crystal::query
