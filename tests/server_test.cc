// QueryServer + serve-protocol suite. The load-bearing property is result
// parity: a batch of N concurrent queries fused into ONE shared morsel
// pass must be bit-identical to N sequential runs (the reference
// interpreter), across storage encodings and SIMD dispatch paths. Around
// that: in-batch dedup, admission control, deadline handling (queued and
// mid-scan), multi-database routing, and the line protocol behind
// `crystaldb --serve`.
#include <gtest/gtest.h>

#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/memory.h"
#include "cpu/build_cache.h"
#include "cpu/vector_ops.h"
#include "query/parser.h"
#include "query/ssb_specs.h"
#include "server/query_server.h"
#include "server/serve.h"
#include "ssb/datagen.h"
#include "ssb/queries.h"

namespace crystal::server {
namespace {

const ssb::Database& TestDb() {
  static const ssb::Database* db = new ssb::Database(ssb::Generate(1, 200));
  return *db;
}

const ssb::Database& PackedDb() {
  static const ssb::Database* db = [] {
    ssb::DatagenOptions options;
    options.scale_factor = 1;
    options.fact_divisor = 200;
    options.storage.encoding = storage::Encoding::kPacked;
    return new ssb::Database(ssb::Generate(options));
  }();
  return *db;
}

query::QuerySpec Adhoc(const std::string& text) {
  query::QuerySpec spec;
  std::string error;
  EXPECT_TRUE(query::ParseQuerySpec(text, &spec, &error)) << error;
  return spec;
}

/// Restores SIMD dispatch, uninstalls any fault rules, and clears the
/// process build cache between sections (cached sides built under a
/// scoped dispatch state must not leak into the next test).
class DispatchGuard {
 public:
  DispatchGuard() : simd_(cpu::SimdEnabled()) {}
  ~DispatchGuard() {
    cpu::SetSimdEnabled(simd_);
    fault::Clear();
    cpu::BuildCache::Process().Clear();
  }

 private:
  bool simd_;
};

/// A mixed six-query batch: one per structural shape (scalar aggregate,
/// grouped cascades, sparse grid) plus an ad-hoc spec, with q2.1 twice to
/// exercise dedup inside the parity batch.
std::vector<query::QuerySpec> BatchSpecs() {
  return {
      query::SsbSpec(ssb::QueryId::kQ11),
      query::SsbSpec(ssb::QueryId::kQ21),
      query::SsbSpec(ssb::QueryId::kQ33),
      query::SsbSpec(ssb::QueryId::kQ43),
      Adhoc("sum revenue join supplier on suppkey filter s_region = 2 "
            "join date on orderdate group by s_nation, d_year"),
      query::SsbSpec(ssb::QueryId::kQ21),
  };
}

struct BatchParityParam {
  bool packed;
  bool simd;
};

class BatchParityTest : public ::testing::TestWithParam<BatchParityParam> {};

TEST_P(BatchParityTest, SharedScanMatchesSequentialReference) {
  const BatchParityParam p = GetParam();
  if (p.simd && !cpu::SimdAvailable()) GTEST_SKIP() << "no AVX2 host";
  DispatchGuard guard;
  cpu::BuildCache::Process().Clear();
  cpu::SetSimdEnabled(p.simd);
  const ssb::Database& db = p.packed ? PackedDb() : TestDb();

  ServerOptions options;
  options.start_paused = true;  // all six land in one deterministic batch
  options.threads = 2;
  QueryServer server(options);
  server.AddDatabase("db", &db);

  const std::vector<query::QuerySpec> specs = BatchSpecs();
  std::vector<std::future<QueryOutcome>> futures;
  for (const query::QuerySpec& spec : specs) {
    futures.push_back(server.Submit(spec));
  }
  server.Resume();

  for (size_t i = 0; i < specs.size(); ++i) {
    const QueryOutcome outcome = futures[i].get();
    ASSERT_EQ(outcome.status, QueryOutcome::Status::kOk) << outcome.error;
    EXPECT_EQ(outcome.batch_size, 6);
    EXPECT_TRUE(outcome.shared_scan);
    EXPECT_TRUE(outcome.result == ssb::RunReference(db, specs[i]))
        << "batch member " << i << " diverged from its sequential run";
  }
  server.Drain();  // outcomes land before batch counters; settle first
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.scans_saved, 5);   // six members, one scan
  EXPECT_EQ(stats.dedup_hits, 1);    // the repeated q2.1
  EXPECT_EQ(stats.max_batch_seen, 6);
}

INSTANTIATE_TEST_SUITE_P(
    StorageAndSimd, BatchParityTest,
    ::testing::Values(BatchParityParam{false, true},
                      BatchParityParam{false, false},
                      BatchParityParam{true, true},
                      BatchParityParam{true, false}),
    [](const ::testing::TestParamInfo<BatchParityParam>& info) {
      return std::string(info.param.packed ? "packed" : "plain") +
             (info.param.simd ? "Simd" : "Scalar");
    });

TEST(QueryServerTest, DedupCollapsesIdenticalSpecsOntoOneExecution) {
  DispatchGuard guard;
  ServerOptions options;
  options.start_paused = true;
  options.threads = 2;
  QueryServer server(options);
  server.AddDatabase("db", &TestDb());

  const query::QuerySpec spec = query::SsbSpec(ssb::QueryId::kQ22);
  const ssb::QueryResult want = ssb::RunReference(TestDb(), spec);
  std::vector<std::future<QueryOutcome>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(server.Submit(spec));
  server.Resume();

  int dedup = 0;
  for (auto& f : futures) {
    const QueryOutcome outcome = f.get();
    ASSERT_EQ(outcome.status, QueryOutcome::Status::kOk) << outcome.error;
    EXPECT_TRUE(outcome.result == want);
    dedup += outcome.dedup ? 1 : 0;
  }
  EXPECT_EQ(dedup, 3);  // one primary execution, three twins
  server.Drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.dedup_hits, 3);
}

TEST(QueryServerTest, AdmissionQueueBoundRejects) {
  DispatchGuard guard;
  ServerOptions options;
  options.start_paused = true;  // nothing drains, so the bound is exact
  options.max_queue = 2;
  options.threads = 2;
  QueryServer server(options);
  server.AddDatabase("db", &TestDb());

  auto f1 = server.Submit(query::SsbSpec(ssb::QueryId::kQ11));
  auto f2 = server.Submit(query::SsbSpec(ssb::QueryId::kQ12));
  auto f3 = server.Submit(query::SsbSpec(ssb::QueryId::kQ13));
  const QueryOutcome rejected = f3.get();  // immediate, pre-queue
  EXPECT_EQ(rejected.status, QueryOutcome::Status::kRejected);
  EXPECT_FALSE(rejected.error.empty());

  server.Resume();
  EXPECT_EQ(f1.get().status, QueryOutcome::Status::kOk);
  EXPECT_EQ(f2.get().status, QueryOutcome::Status::kOk);
  EXPECT_EQ(server.stats().rejected, 1);
}

TEST(QueryServerTest, QueuedDeadlineExpiresWithoutExecuting) {
  DispatchGuard guard;
  ServerOptions options;
  options.start_paused = true;
  options.threads = 2;
  QueryServer server(options);
  server.AddDatabase("db", &TestDb());

  QueryServer::SubmitOptions submit;
  submit.timeout_ms = 1;
  auto doomed = server.Submit(query::SsbSpec(ssb::QueryId::kQ11), submit);
  auto fine = server.Submit(query::SsbSpec(ssb::QueryId::kQ12));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Resume();

  const QueryOutcome timed_out = doomed.get();
  EXPECT_EQ(timed_out.status, QueryOutcome::Status::kTimeout);
  EXPECT_NE(timed_out.error.find("queued"), std::string::npos)
      << timed_out.error;
  // The batch still executes its surviving member correctly.
  EXPECT_EQ(fine.get().status, QueryOutcome::Status::kOk);
  EXPECT_EQ(server.stats().timeouts, 1);
}

TEST(QueryServerTest, InvalidSpecAndUnknownDatabaseFailFast) {
  DispatchGuard guard;
  QueryServer server;  // default options: running, but nothing enqueues
  server.AddDatabase("db", &TestDb());

  // Group key without its join: fails Validate before ever queueing.
  query::QuerySpec invalid = query::SsbSpec(ssb::QueryId::kQ11);
  invalid.group_by.push_back(query::DimCol::kDYear);
  const QueryOutcome bad_spec = server.ExecuteSync(invalid);
  EXPECT_EQ(bad_spec.status, QueryOutcome::Status::kError);
  EXPECT_FALSE(bad_spec.error.empty());

  QueryServer::SubmitOptions submit;
  submit.database = "nope";
  const QueryOutcome bad_db =
      server.ExecuteSync(query::SsbSpec(ssb::QueryId::kQ11), submit);
  EXPECT_EQ(bad_db.status, QueryOutcome::Status::kError);
  EXPECT_NE(bad_db.error.find("nope"), std::string::npos) << bad_db.error;
  EXPECT_EQ(server.stats().errors, 2);
  EXPECT_EQ(server.stats().batches, 0);
}

TEST(QueryServerTest, RoutesToResidentDatabases) {
  DispatchGuard guard;
  const ssb::Database small = ssb::Generate(1, 1000, /*seed=*/777);
  ServerOptions options;
  options.threads = 2;
  QueryServer server(options);
  server.AddDatabase("big", &TestDb());
  server.AddDatabase("small", &small);
  EXPECT_EQ(server.database_names(),
            (std::vector<std::string>{"big", "small"}));

  const query::QuerySpec spec = query::SsbSpec(ssb::QueryId::kQ31);
  QueryServer::SubmitOptions to_small;
  to_small.database = "small";
  const QueryOutcome a = server.ExecuteSync(spec);  // default = first
  const QueryOutcome b = server.ExecuteSync(spec, to_small);
  ASSERT_EQ(a.status, QueryOutcome::Status::kOk) << a.error;
  ASSERT_EQ(b.status, QueryOutcome::Status::kOk) << b.error;
  EXPECT_EQ(a.database, "big");
  EXPECT_EQ(b.database, "small");
  EXPECT_TRUE(a.result == ssb::RunReference(TestDb(), spec));
  EXPECT_TRUE(b.result == ssb::RunReference(small, spec));
  EXPECT_FALSE(a.result == b.result);  // really two different databases
}

// ----------------------------------------------------------- robustness

TEST(QueryServerTest, BuildFailureIsIsolatedToItsBatchMember) {
  DispatchGuard guard;
  ServerOptions options;
  options.start_paused = true;  // both members land in one batch
  options.threads = 2;
  QueryServer server(options);
  server.AddDatabase("db", &TestDb());

  // The first distinct spec's build fails (injected); its batch-mate
  // shares the scan and must still produce a bit-identical result.
  ASSERT_TRUE(fault::Install("fused.build=fail@1").ok());
  const query::QuerySpec doomed_spec = query::SsbSpec(ssb::QueryId::kQ21);
  const query::QuerySpec fine_spec = query::SsbSpec(ssb::QueryId::kQ34);
  auto doomed = server.Submit(doomed_spec);
  auto doomed_twin = server.Submit(doomed_spec);  // dedups onto the same
  auto fine = server.Submit(fine_spec);           // execution as `doomed`
  server.Resume();

  const QueryOutcome failed = doomed.get();
  EXPECT_EQ(failed.status, QueryOutcome::Status::kError);
  EXPECT_NE(failed.error.find("fused.build"), std::string::npos)
      << failed.error;
  EXPECT_TRUE(failed.retryable);  // kFaultInjected is transient
  EXPECT_EQ(doomed_twin.get().status, QueryOutcome::Status::kError);

  const QueryOutcome ok = fine.get();
  ASSERT_EQ(ok.status, QueryOutcome::Status::kOk) << ok.error;
  EXPECT_EQ(ok.batch_size, 3);
  EXPECT_TRUE(ok.result == ssb::RunReference(TestDb(), fine_spec));

  server.Drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.errors, 2);
  // The failed build was not cached: re-running the doomed spec with the
  // fault exhausted (it fired on hit 1 only) must now succeed.
  const QueryOutcome retry = server.ExecuteSync(doomed_spec);
  ASSERT_EQ(retry.status, QueryOutcome::Status::kOk) << retry.error;
  EXPECT_TRUE(retry.result == ssb::RunReference(TestDb(), doomed_spec));
}

TEST(QueryServerTest, MorselFaultFailsOnlyThatExecution) {
  DispatchGuard guard;
  ServerOptions options;
  options.start_paused = true;
  options.threads = 2;
  options.morsel_rows = 1024;  // many morsels, so the fault lands mid-scan
  QueryServer server(options);
  server.AddDatabase("db", &TestDb());

  // Executions run in submission order within each morsel, so hit 1 of
  // fused.morsel belongs to the first submitted spec.
  ASSERT_TRUE(fault::Install("fused.morsel=fail@1").ok());
  const query::QuerySpec fine_spec = query::SsbSpec(ssb::QueryId::kQ13);
  auto doomed = server.Submit(query::SsbSpec(ssb::QueryId::kQ12));
  auto fine = server.Submit(fine_spec);
  server.Resume();

  const QueryOutcome failed = doomed.get();
  EXPECT_EQ(failed.status, QueryOutcome::Status::kError);
  EXPECT_NE(failed.error.find("fused.morsel"), std::string::npos)
      << failed.error;
  const QueryOutcome ok = fine.get();
  ASSERT_EQ(ok.status, QueryOutcome::Status::kOk) << ok.error;
  EXPECT_TRUE(ok.result == ssb::RunReference(TestDb(), fine_spec));
}

TEST(QueryServerTest, RejectionsCarryTheRetryContract) {
  DispatchGuard guard;
  ServerOptions options;
  options.start_paused = true;
  options.max_queue = 1;
  options.threads = 2;
  QueryServer server(options);
  server.AddDatabase("db", &TestDb());

  auto queued = server.Submit(query::SsbSpec(ssb::QueryId::kQ11));
  const QueryOutcome overflow =
      server.Submit(query::SsbSpec(ssb::QueryId::kQ12)).get();
  EXPECT_EQ(overflow.status, QueryOutcome::Status::kRejected);
  EXPECT_TRUE(overflow.retryable);  // queue-full is transient by definition

  query::QuerySpec invalid = query::SsbSpec(ssb::QueryId::kQ11);
  invalid.group_by.push_back(query::DimCol::kDYear);
  const QueryOutcome bad = server.ExecuteSync(invalid);
  EXPECT_EQ(bad.status, QueryOutcome::Status::kError);
  EXPECT_FALSE(bad.retryable);  // invalid input never succeeds on retry

  server.Resume();
  EXPECT_EQ(queued.get().status, QueryOutcome::Status::kOk);
}

TEST(QueryServerTest, MemoryAdmissionRejectsOversizedAndRunsScalar) {
  DispatchGuard guard;
  ServerOptions options;
  options.threads = 2;
  // ~1/4 of the workload's unbudgeted peak: far too small for any join
  // query's build sides, plenty for a scalar aggregate's state.
  options.memory_budget_bytes = 128 << 10;
  {
    QueryServer server(options);
    server.AddDatabase("db", &TestDb());

    // Scalar shape: no build sides, tiny footprint — always admitted.
    const QueryOutcome scalar =
        server.ExecuteSync(query::SsbSpec(ssb::QueryId::kQ11));
    EXPECT_EQ(scalar.status, QueryOutcome::Status::kOk);
    EXPECT_TRUE(scalar.result ==
                ssb::RunReference(TestDb(), query::SsbSpec(ssb::QueryId::kQ11)));

    // Join shape: the date build side alone (~244 KiB direct) exceeds the
    // whole budget, so the predicted minimum can never fit — a retryable
    // kResourceExhausted with a backoff hint, decided at admission
    // (batch_size 0: it never reached the scheduler).
    const QueryOutcome rejected =
        server.ExecuteSync(query::SsbSpec(ssb::QueryId::kQ21));
    EXPECT_EQ(rejected.status, QueryOutcome::Status::kRejected);
    EXPECT_TRUE(rejected.retryable);
    EXPECT_GT(rejected.retry_after_ms, 0);
    EXPECT_NE(rejected.error.find("kResourceExhausted"), std::string::npos)
        << rejected.error;
    EXPECT_EQ(rejected.batch_size, 0);

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.mem_rejected, 1);
    EXPECT_EQ(stats.completed, 2);
  }
  MemoryBudget::Process().set_limit(0);
  cpu::BuildCache::Process().Clear();
  EXPECT_EQ(MemoryBudget::Process().used(), 0);  // drained ledger
}

TEST(QueryServerTest, DestructionWhileLoadedFulfillsEveryPromise) {
  DispatchGuard guard;
  // Paused server with queued work: destruction must resolve every
  // outstanding future (kRejected), never leave a waiter hung.
  std::vector<std::future<QueryOutcome>> futures;
  {
    ServerOptions options;
    options.start_paused = true;
    options.threads = 2;
    QueryServer server(options);
    server.AddDatabase("db", &TestDb());
    for (int i = 0; i < 8; ++i) {
      futures.push_back(server.Submit(query::SsbSpec(ssb::QueryId::kQ21)));
    }
  }
  for (auto& future : futures) {
    const QueryOutcome outcome = future.get();  // must not block forever
    EXPECT_EQ(outcome.status, QueryOutcome::Status::kRejected);
    EXPECT_NE(outcome.error.find("shutting down"), std::string::npos);
  }

  // Running server destructed right after submission: whatever the
  // scheduler already started completes normally; the rest is rejected.
  futures.clear();
  {
    ServerOptions options;
    options.threads = 2;
    QueryServer server(options);
    server.AddDatabase("db", &TestDb());
    for (int i = 0; i < 8; ++i) {
      futures.push_back(server.Submit(query::SsbSpec(ssb::QueryId::kQ11)));
    }
  }
  for (auto& future : futures) {
    const QueryOutcome outcome = future.get();
    EXPECT_TRUE(outcome.status == QueryOutcome::Status::kOk ||
                outcome.status == QueryOutcome::Status::kRejected)
        << StatusName(outcome.status) << ": " << outcome.error;
  }
}

TEST(QueryServerTest, WatchdogFlagsAStalledHeartbeat) {
  DispatchGuard guard;
  ServerOptions options;
  options.threads = 2;
  options.morsel_rows = 1024;
  options.watchdog_ms = 40;  // fast watchdog against a 250 ms morsel stall
  QueryServer server(options);
  server.AddDatabase("db", &TestDb());

  ASSERT_TRUE(fault::Install("fused.morsel=delay:250ms@1").ok());
  const QueryOutcome outcome =
      server.ExecuteSync(query::SsbSpec(ssb::QueryId::kQ11));
  ASSERT_EQ(outcome.status, QueryOutcome::Status::kOk) << outcome.error;
  server.Drain();
  EXPECT_GE(server.stats().watchdog_stalls, 1);
}

// ------------------------------------------------------------- protocol

/// Runs the serve loop over a script and returns (exit code, output).
std::pair<int, std::string> RunServe(const std::string& script,
                                     ServeConfig config = ServeConfig()) {
  std::istringstream in(script);
  std::ostringstream out;
  std::vector<std::pair<std::string, const ssb::Database*>> dbs;
  dbs.emplace_back("sf1", &TestDb());
  const int exit_code = Serve(in, out, dbs, config);
  return {exit_code, out.str()};
}

TEST(ServeProtocolTest, AnswersCanonicalAdhocAndErrorLines) {
  DispatchGuard guard;
  ServeConfig config;
  config.server.threads = 2;
  config.check = true;  // every result re-validated against the reference
  const auto [exit_code, out] = RunServe(
      "# comment, then a blank line, are ignored\n"
      "\n"
      "q2.1\n"
      "sum revenue join date on orderdate group by d_year\n"
      "this is not a query\n"
      "@sf1 timeout=60000 q1.1\n",
      config);
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_NE(out.find("\"query\": \"q2.1\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"query\": \"adhoc2\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"query\": \"q1.1\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"status\": \"error\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"input\": \"this is not a query\""),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"match\": true"), std::string::npos) << out;
  EXPECT_EQ(out.find("\"match\": false"), std::string::npos) << out;
  EXPECT_NE(out.find("\"event\": \"server_stats\""), std::string::npos)
      << out;
  // Three answered queries + one parse error; the error line never
  // reaches the server.
  EXPECT_NE(out.find("\"submitted\": 3"), std::string::npos) << out;
}

TEST(ServeProtocolTest, UnknownDatabaseDirectiveIsAnError) {
  DispatchGuard guard;
  ServeConfig config;
  config.server.threads = 2;
  const auto [exit_code, out] = RunServe("@sf9 q1.1\n", config);
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_NE(out.find("\"status\": \"error\""), std::string::npos) << out;
  EXPECT_NE(out.find("sf9"), std::string::npos) << out;
}

TEST(ServeProtocolTest, GroupRowsAreEmittedAndTruncatable) {
  DispatchGuard guard;
  ServeConfig config;
  config.server.threads = 2;
  const auto [exit_code, out] = RunServe("q2.1\n", config);
  EXPECT_EQ(exit_code, 0) << out;
  EXPECT_NE(out.find("\"rows\": ["), std::string::npos) << out;

  ServeConfig tiny = config;
  tiny.max_result_rows = 1;  // q2.1 groups by (d_year, p_brand1): many rows
  const auto [exit2, out2] = RunServe("q2.1\n", tiny);
  EXPECT_EQ(exit2, 0) << out2;
  EXPECT_NE(out2.find("\"rows_truncated\": true"), std::string::npos)
      << out2;
  EXPECT_EQ(out2.find("\"rows\": ["), std::string::npos) << out2;
}

}  // namespace
}  // namespace crystal::server
