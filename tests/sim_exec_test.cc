#include <gtest/gtest.h>

#include <vector>

#include "sim/device.h"
#include "sim/exec.h"
#include "sim/timing.h"

namespace crystal::sim {
namespace {

TEST(DeviceTest, ProfilesMatchTable2) {
  const DeviceProfile gpu = DeviceProfile::V100();
  const DeviceProfile cpu = DeviceProfile::SkylakeI7();
  EXPECT_DOUBLE_EQ(gpu.read_bw_gbps, 880.0);
  EXPECT_DOUBLE_EQ(cpu.read_bw_gbps, 53.0);
  EXPECT_DOUBLE_EQ(cpu.write_bw_gbps, 55.0);
  EXPECT_EQ(gpu.l2_bytes_total, 6 * 1024 * 1024);
  EXPECT_EQ(cpu.l3_bytes_total, 20 * 1024 * 1024);
  EXPECT_NEAR(gpu.read_bw_gbps / cpu.read_bw_gbps, 16.6, 0.1);
}

TEST(DeviceTest, AddressRangesDisjoint) {
  Device dev(DeviceProfile::V100());
  DeviceBuffer<int32_t> a(dev, 100);
  DeviceBuffer<int32_t> b(dev, 100);
  EXPECT_GE(b.addr(0), a.addr(99) + 4);
}

TEST(DeviceTest, RandomReadsFilterThroughL2) {
  Device dev(DeviceProfile::V100());
  DeviceBuffer<int32_t> buf(dev, 1024);
  dev.RecordRandomRead(buf.addr(0), 4);
  dev.RecordRandomRead(buf.addr(0), 4);  // same sector: L2 hit
  EXPECT_EQ(dev.stats().rand_read_lines_dram, 1u);
  EXPECT_EQ(dev.stats().rand_read_lines_cache, 1u);
}

TEST(DeviceTest, L2DisabledChargesDram) {
  Device dev(DeviceProfile::V100());
  dev.set_l2_enabled(false);
  DeviceBuffer<int32_t> buf(dev, 1024);
  dev.RecordRandomRead(buf.addr(0), 4);
  dev.RecordRandomRead(buf.addr(0), 4);
  EXPECT_EQ(dev.stats().rand_read_lines_dram, 2u);
}

TEST(DeviceTest, CpuProfileUsesL3SizedCache) {
  Device dev(DeviceProfile::SkylakeI7());
  ASSERT_NE(dev.l2(), nullptr);
  EXPECT_EQ(dev.l2()->size_bytes(), 20 * 1024 * 1024);
}

TEST(ExecTest, LaunchTilesCoversAllItemsOnce) {
  Device dev(DeviceProfile::V100());
  const int64_t n = 10'000;
  std::vector<int> touched(n, 0);
  LaunchConfig cfg{128, 4};
  LaunchTiles(dev, "touch", cfg, n,
              [&](ThreadBlock&, int64_t off, int tile) {
                for (int i = 0; i < tile; ++i) ++touched[off + i];
              });
  for (int64_t i = 0; i < n; ++i) ASSERT_EQ(touched[i], 1) << i;
  // ceil(10000 / 512) = 20 blocks.
  ASSERT_EQ(dev.records().size(), 1u);
  EXPECT_EQ(dev.records()[0].num_blocks, 20);
  EXPECT_EQ(dev.stats().kernel_launches, 1u);
}

TEST(ExecTest, PartialLastTileSizedCorrectly) {
  Device dev(DeviceProfile::V100());
  LaunchConfig cfg{32, 4};  // tile = 128
  int last_tile = -1;
  LaunchTiles(dev, "partial", cfg, 300,
              [&](ThreadBlock& tb, int64_t, int tile) {
                if (tb.block_idx() == tb.num_blocks() - 1) last_tile = tile;
              });
  EXPECT_EQ(last_tile, 300 - 2 * 128);
}

TEST(ExecTest, SharedMemoryResetsBetweenBlocks) {
  Device dev(DeviceProfile::V100());
  LaunchConfig cfg{32, 1};
  LaunchBlocks(dev, "smem", cfg, 4, [&](ThreadBlock& tb) {
    int* p = tb.AllocShared<int>(1000);  // would overflow if it accumulated
    p[0] = 1;
    int* q = tb.AllocShared<int>(1000);
    q[0] = 2;
    EXPECT_NE(p, q);
  });
  SUCCEED();
}

TEST(ExecTest, AtomicAddReturnsOldValueAndCounts) {
  Device dev(DeviceProfile::V100());
  int64_t counter = 0;
  LaunchBlocks(dev, "atomics", {}, 3, [&](ThreadBlock& tb) {
    const int64_t old = tb.AtomicAdd(&counter, int64_t{5});
    EXPECT_EQ(old, tb.block_idx() * 5);
  });
  EXPECT_EQ(counter, 15);
  EXPECT_EQ(dev.stats().atomic_ops, 3u);
}

TEST(ExecTest, RunAsKernelRecordsDelta) {
  Device dev(DeviceProfile::V100());
  RunAsKernel(dev, "bulk", {}, 7, [&] { dev.RecordSeqRead(1000); });
  ASSERT_EQ(dev.records().size(), 1u);
  EXPECT_EQ(dev.records()[0].mem.seq_read_bytes, 1000u);
  EXPECT_EQ(dev.records()[0].num_blocks, 7);
}

// ------------------------- Timing model properties ------------------------

TEST(TimingTest, BandwidthBoundKernelMatchesModel) {
  // 1 GB read + 1 GB write at 880/880 GBps => ~2.27 ms.
  MemStats mem;
  mem.seq_read_bytes = 1'000'000'000;
  mem.seq_write_bytes = 1'000'000'000;
  const TimeBreakdown t =
      EstimateKernelTime(mem, DeviceProfile::V100(), LaunchConfig{128, 4});
  EXPECT_NEAR(t.dram_ms, 2.0 / 0.88, 0.01);
  EXPECT_NEAR(t.total_ms, t.dram_ms, 0.01);
}

TEST(TimingTest, GpuToCpuRatioIsBandwidthRatio) {
  MemStats mem;
  mem.seq_read_bytes = 4'000'000'000;
  const double gpu =
      EstimateKernelTime(mem, DeviceProfile::V100(), {}).total_ms;
  const double cpu =
      EstimateKernelTime(mem, DeviceProfile::SkylakeI7(), {}).total_ms;
  EXPECT_NEAR(cpu / gpu, 880.0 / 53.0, 0.05);
}

TEST(TimingTest, SmallItemsPerThreadLosesBandwidth) {
  MemStats mem;
  mem.seq_read_bytes = 1'000'000'000;
  const DeviceProfile gpu = DeviceProfile::V100();
  const double ipt4 = EstimateKernelTime(mem, gpu, {128, 4}).total_ms;
  const double ipt2 = EstimateKernelTime(mem, gpu, {128, 2}).total_ms;
  const double ipt1 = EstimateKernelTime(mem, gpu, {128, 1}).total_ms;
  EXPECT_LT(ipt4, ipt2);
  EXPECT_LT(ipt2, ipt1);
}

TEST(TimingTest, HugeThreadBlocksLoseOccupancy) {
  MemStats mem;
  mem.seq_read_bytes = 1'000'000'000;
  const DeviceProfile gpu = DeviceProfile::V100();
  const double b256 = EstimateKernelTime(mem, gpu, {256, 4}).total_ms;
  const double b512 = EstimateKernelTime(mem, gpu, {512, 4}).total_ms;
  const double b1024 = EstimateKernelTime(mem, gpu, {1024, 4}).total_ms;
  EXPECT_LT(b256, b512);
  EXPECT_LT(b512, b1024);
}

TEST(TimingTest, AtomicsSerializeOnTopOfBandwidth) {
  MemStats mem;
  mem.seq_read_bytes = 1'000'000;
  mem.atomic_ops = 10'000'000;
  const TimeBreakdown t = EstimateKernelTime(mem, DeviceProfile::V100(), {});
  EXPECT_GT(t.atomic_ms, t.dram_ms);
  EXPECT_NEAR(t.total_ms, t.dram_ms + t.atomic_ms + t.launch_ms, 1e-9);
}

TEST(TimingTest, CpuStallsOnRandomDramReads) {
  MemStats mem;
  mem.rand_read_lines_dram = 10'000'000;
  const TimeBreakdown cpu =
      EstimateKernelTime(mem, DeviceProfile::SkylakeI7(), {});
  const TimeBreakdown gpu =
      EstimateKernelTime(mem, DeviceProfile::V100(), {});
  EXPECT_GT(cpu.stall_ms, 0.0);
  EXPECT_DOUBLE_EQ(gpu.stall_ms, 0.0);  // GPUs hide latency with warps
}

TEST(TimingTest, CacheServedTrafficUsesCacheBandwidth) {
  MemStats mem;
  mem.rand_read_lines_cache = 10'000'000;  // 640 MB through L2
  const TimeBreakdown t = EstimateKernelTime(mem, DeviceProfile::V100(), {});
  EXPECT_NEAR(t.cache_ms, 640.0 / 2200.0, 0.01);
}

}  // namespace
}  // namespace crystal::sim
