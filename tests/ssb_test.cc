#include <gtest/gtest.h>

#include <memory>

#include "common/thread_pool.h"
#include "sim/timing.h"
#include "ssb/crystal_engine.h"
#include "ssb/datagen.h"
#include "ssb/materializing_engine.h"
#include "ssb/queries.h"
#include "ssb/vectorized_cpu_engine.h"

namespace crystal::ssb {
namespace {

// One shared small database for all engine-equivalence tests:
// SF1 dimensions with a 60k-row fact sample keeps the suite fast.
const Database& TestDb() {
  static const Database* db = new Database(Generate(1, 100));
  return *db;
}

TEST(DatagenTest, CardinalitiesFollowDbgen) {
  EXPECT_EQ(LineorderRows(1), 6'000'000);
  EXPECT_EQ(LineorderRows(20), 120'000'000);
  EXPECT_EQ(CustomerRows(20), 600'000);
  EXPECT_EQ(SupplierRows(20), 40'000);
  EXPECT_EQ(PartRows(1), 200'000);
  EXPECT_EQ(PartRows(20), 1'000'000);  // 200k * (1 + floor(log2 20))
}

TEST(DatagenTest, DateDimensionWellFormed) {
  const Database& db = TestDb();
  EXPECT_EQ(db.d.rows, kDateRows);
  EXPECT_EQ(db.d.datekey[0], 19920101);
  EXPECT_EQ(db.d.year[0], 1992);
  for (int64_t i = 1; i < db.d.rows; ++i) {
    EXPECT_GT(db.d.datekey[i], db.d.datekey[i - 1]);
  }
  EXPECT_EQ(db.d.datekey[365], 19921231);  // 1992 is a leap year (366 days)
  EXPECT_EQ(db.d.datekey[366], 19930101);
}

TEST(DatagenTest, DimensionHierarchiesConsistent) {
  const Database& db = TestDb();
  for (int64_t i = 0; i < db.c.rows; ++i) {
    ASSERT_EQ(db.c.nation[i], db.c.city[i] / 10);
    ASSERT_EQ(db.c.region[i], db.c.nation[i] / 5);
  }
  for (int64_t i = 0; i < db.p.rows; ++i) {
    ASSERT_EQ(db.p.mfgr[i], db.p.category[i] / 10);
    ASSERT_EQ(db.p.category[i], db.p.brand1[i] / 100);
    ASSERT_GE(db.p.brand1[i] % 100, 1);
    ASSERT_LE(db.p.brand1[i] % 100, 40);
  }
}

TEST(DatagenTest, ForeignKeysResolve) {
  const Database& db = TestDb();
  for (int64_t i = 0; i < db.lo.rows; ++i) {
    ASSERT_GE(db.lo.custkey[i], 1);
    ASSERT_LE(db.lo.custkey[i], db.c.rows);
    ASSERT_GE(db.lo.suppkey[i], 1);
    ASSERT_LE(db.lo.suppkey[i], db.s.rows);
    ASSERT_GE(db.lo.partkey[i], 1);
    ASSERT_LE(db.lo.partkey[i], db.p.rows);
  }
}

TEST(DatagenTest, Q11SelectivityNearPaper) {
  // year=1993 (1/7) x discount 1..3 (3/11) x quantity<25 (24/50) ~ 1.9%.
  const Database& db = TestDb();
  const query::QuerySpec spec = query::SsbSpec(QueryId::kQ11);
  int64_t matches = 0;
  for (int64_t i = 0; i < db.lo.rows; ++i) {
    bool pass = true;
    for (const query::FactFilter& f : spec.fact_filters) {
      const int32_t v =
          query::FactColumn(db, f.col)[static_cast<size_t>(i)];
      if (v < f.lo || v > f.hi) {
        pass = false;
        break;
      }
    }
    if (pass) ++matches;
  }
  const double sigma =
      static_cast<double>(matches) / static_cast<double>(db.lo.rows);
  EXPECT_NEAR(sigma, 0.019, 0.004);
}

TEST(DatagenTest, Deterministic) {
  const Database a = Generate(1, 1000, 99);
  const Database b = Generate(1, 1000, 99);
  EXPECT_EQ(a.lo.revenue, b.lo.revenue);
  EXPECT_EQ(a.p.brand1, b.p.brand1);
}

// ------------------------- Engine equivalence ----------------------------

class EngineEquivalenceTest : public ::testing::TestWithParam<QueryId> {};

TEST_P(EngineEquivalenceTest, VectorizedCpuMatchesReference) {
  const QueryId id = GetParam();
  ThreadPool pool(4);
  VectorizedCpuEngine engine(TestDb(), pool);
  const QueryResult want = RunReference(TestDb(), id);
  const QueryResult got = engine.Run(id);
  EXPECT_EQ(got, want) << QueryName(id) << "\n got: " << got.ToString()
                       << "\nwant: " << want.ToString();
}

TEST_P(EngineEquivalenceTest, CrystalGpuMatchesReference) {
  const QueryId id = GetParam();
  sim::Device dev(sim::DeviceProfile::V100());
  CrystalEngine engine(dev, TestDb());
  const QueryResult want = RunReference(TestDb(), id);
  const EngineRun run = engine.Run(id);
  EXPECT_EQ(run.result, want)
      << QueryName(id) << "\n got: " << run.result.ToString()
      << "\nwant: " << want.ToString();
  EXPECT_GT(run.total_ms, 0.0);
  EXPECT_GT(run.fact_bytes_shipped, 0);
}

TEST_P(EngineEquivalenceTest, CrystalCpuProfileMatchesReference) {
  const QueryId id = GetParam();
  sim::Device dev(sim::DeviceProfile::SkylakeI7());
  CrystalEngine engine(dev, TestDb());
  const QueryResult want = RunReference(TestDb(), id);
  EXPECT_EQ(engine.Run(id).result, want) << QueryName(id);
}

TEST_P(EngineEquivalenceTest, MaterializingMatchesReference) {
  const QueryId id = GetParam();
  sim::Device dev(sim::DeviceProfile::V100());
  MaterializingEngine engine(dev, TestDb());
  const QueryResult want = RunReference(TestDb(), id);
  const EngineRun run = engine.Run(id);
  EXPECT_EQ(run.result, want)
      << QueryName(id) << "\n got: " << run.result.ToString()
      << "\nwant: " << want.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    AllQueries, EngineEquivalenceTest, ::testing::ValuesIn(kAllQueries),
    [](const ::testing::TestParamInfo<QueryId>& info) {
      std::string name = QueryName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '.'), name.end());
      return name;
    });

// --------------------------- Cost-shape checks ---------------------------

TEST(EngineCostTest, GpuBeatsCpuOnEveryQuery) {
  // Needs a fact sample large enough that fixed kernel-launch overhead does
  // not dominate the GPU side (600k rows here).
  const Database db = Generate(1, 10);
  sim::Device gpu(sim::DeviceProfile::V100());
  sim::Device cpu(sim::DeviceProfile::SkylakeI7());
  CrystalEngine gpu_engine(gpu, db);
  CrystalEngine cpu_engine(cpu, db);
  for (QueryId id : kAllQueries) {
    const double g = gpu_engine.Run(id).probe_ms;
    const double c = cpu_engine.Run(id).probe_ms;
    EXPECT_GT(c, 5.0 * g) << QueryName(id);
  }
}

TEST(EngineCostTest, MaterializingCostsMoreThanCrystalOnGpu) {
  sim::Device a(sim::DeviceProfile::V100());
  sim::Device b(sim::DeviceProfile::V100());
  CrystalEngine crystal_engine(a, TestDb());
  MaterializingEngine mat_engine(b, TestDb());
  for (QueryId id : {QueryId::kQ11, QueryId::kQ21, QueryId::kQ31,
                     QueryId::kQ41}) {
    const double fused = crystal_engine.Run(id).probe_ms;
    const double mat = mat_engine.Run(id).probe_ms;
    EXPECT_GT(mat, 1.5 * fused) << QueryName(id);
  }
}

TEST(EngineCostTest, Q1TrafficBoundedBySixteenBytesPerRow) {
  // Section 3.1: an efficient implementation answers Q1.x in one pass over
  // 4 columns; selective predicates can only reduce that.
  sim::Device dev(sim::DeviceProfile::V100());
  CrystalEngine engine(dev, TestDb());
  engine.Run(QueryId::kQ11);
  const auto& st = dev.stats();
  EXPECT_LE(st.seq_read_bytes,
            static_cast<uint64_t>(16 * TestDb().lo.rows) + (1 << 20));
}

TEST(EngineCostTest, ScaledTotalMultipliesOnlyProbeTime) {
  EngineRun run;
  run.build_ms = 2.0;
  run.probe_ms = 3.0;
  EXPECT_DOUBLE_EQ(run.ScaledTotalMs(10), 2.0 + 30.0);
}

}  // namespace
}  // namespace crystal::ssb
