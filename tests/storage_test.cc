// Storage-layer tests: bit-packed encoding round-trips, layout formulas,
// the streaming ColumnBuilder, the CPU unpack/select kernels against the
// scalar PackedGet reference (both SIMD dispatch states), and datagen's
// contract that plain and packed runs generate value-identical databases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "common/rng.h"
#include "cpu/vector_ops.h"
#include "query/query_spec.h"
#include "ssb/datagen.h"
#include "storage/encoded_column.h"

namespace crystal::storage {
namespace {

// ---------------------------------------------------------------------
// Layout formulas.

TEST(StorageLayoutTest, BitsForSpan) {
  EXPECT_EQ(BitsForSpan(0), 1);  // never a 0-bit column
  EXPECT_EQ(BitsForSpan(1), 1);
  EXPECT_EQ(BitsForSpan(2), 2);
  EXPECT_EQ(BitsForSpan(3), 2);
  EXPECT_EQ(BitsForSpan(4), 3);
  for (int b = 1; b < 32; ++b) {
    const uint32_t max = (1u << b) - 1u;
    EXPECT_EQ(BitsForSpan(max), b) << max;
    EXPECT_EQ(BitsForSpan(max + 1), b + 1) << max + 1;
  }
  EXPECT_EQ(BitsForSpan(0xffffffffu), 32);
}

TEST(StorageLayoutTest, PackedBytesIsCeilRowsBitsOver8) {
  EXPECT_EQ(PackedBytes(0, 7), 0);
  EXPECT_EQ(PackedBytes(1, 1), 1);
  EXPECT_EQ(PackedBytes(8, 1), 1);
  EXPECT_EQ(PackedBytes(9, 1), 2);
  EXPECT_EQ(PackedBytes(3, 6), 3);   // 18 bits -> 3 bytes
  EXPECT_EQ(PackedBytes(5, 13), 9);  // 65 bits -> 9 bytes
  EXPECT_EQ(PackedBytes(1000, 32), 4000);
  // The 42-bit q1.x working set: 6M rows at 16+6+4+16 bits = 31.5 MB,
  // i.e. 5.25 bytes/row — the number the coprocessor ships over PCIe.
  EXPECT_EQ(PackedBytes(6000000, 16) + PackedBytes(6000000, 6) +
                PackedBytes(6000000, 4) + PackedBytes(6000000, 16),
            31500000);
}

TEST(StorageLayoutTest, PackedWordsHasTailSlack) {
  // Payload words + 1, so 64-bit window reads at the last row stay in
  // bounds for every (rows, bits) combination.
  EXPECT_EQ(PackedWords(0, 9), 1);
  EXPECT_EQ(PackedWords(1, 1), 2);
  EXPECT_EQ(PackedWords(32, 1), 2);
  EXPECT_EQ(PackedWords(33, 1), 3);
  EXPECT_EQ(PackedWords(8, 32), 9);
  for (int bits = 1; bits <= 32; ++bits) {
    for (int64_t rows : {1, 7, 64, 1000}) {
      const int64_t payload = (rows * bits + 31) / 32;
      EXPECT_EQ(PackedWords(rows, bits), payload + 1) << rows << "x" << bits;
    }
  }
}

TEST(StorageLayoutTest, EncodingNames) {
  Encoding e = Encoding::kPacked;
  EXPECT_TRUE(EncodingFromName("plain", &e));
  EXPECT_EQ(e, Encoding::kPlain);
  EXPECT_TRUE(EncodingFromName("packed", &e));
  EXPECT_EQ(e, Encoding::kPacked);
  EXPECT_FALSE(EncodingFromName("zstd", &e));
  EXPECT_FALSE(EncodingFromName("", &e));
  EXPECT_STREQ(EncodingName(Encoding::kPlain), "plain");
  EXPECT_STREQ(EncodingName(Encoding::kPacked), "packed");
}

// ---------------------------------------------------------------------
// Round-trips.

std::vector<int32_t> RandomValues(Rng* rng, int n, int32_t lo, int32_t hi) {
  std::vector<int32_t> v(static_cast<size_t>(n));
  for (int32_t& x : v) x = rng->UniformInt(lo, hi);
  return v;
}

TEST(EncodedColumnTest, PackRoundTripsEveryWidthAndTailLength) {
  Rng rng(1);
  for (int bits = 1; bits <= 32; ++bits) {
    // References below, at and above zero; the span forces exactly `bits`.
    const int32_t reference = bits % 3 == 0 ? -123456 : (bits % 3 == 1 ? 0 : 7);
    const int64_t span = bits >= 32 ? 0xffffffffll : (1ll << bits) - 1;
    // n from 1 to a few words' worth, so tails straddle word boundaries at
    // every phase for every width.
    for (int n = 1; n <= 70; n += (bits < 8 ? 1 : 7)) {
      std::vector<int32_t> values(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) {
        values[static_cast<size_t>(i)] = static_cast<int32_t>(
            reference + static_cast<int64_t>(rng.Next64() % (span + 1)));
      }
      // Pin the extremes so Pack's derived layout is exercised at width.
      values[0] = reference;
      values[static_cast<size_t>(n - 1)] =
          static_cast<int32_t>(reference + span);

      const EncodedColumn packed = EncodedColumn::Pack(values.data(), n);
      ASSERT_EQ(packed.encoding(), Encoding::kPacked);
      EXPECT_EQ(packed.rows(), n);
      // At bits=32 `reference + span` wraps int32, so the derived layout
      // legitimately picks the (negative) wrapped minimum; only narrower
      // widths pin the exact layout.
      if (n > 1 && bits < 32) {
        EXPECT_EQ(packed.bits(), bits) << "n=" << n;
        EXPECT_EQ(packed.reference(), reference);
      }
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(packed.Get(i), values[static_cast<size_t>(i)])
            << "bits=" << bits << " n=" << n << " i=" << i;
      }
      EXPECT_EQ(packed.encoded_bytes(), PackedBytes(n, packed.bits()));
    }
  }
}

TEST(EncodedColumnTest, PackWithLayoutRoundTripsExplicitLayouts) {
  Rng rng(2);
  for (int bits : {1, 3, 11, 17, 31, 32}) {
    const int32_t reference = -50;
    const int64_t span = bits >= 32 ? 0xffffffffll : (1ll << bits) - 1;
    const int n = 257;
    std::vector<int32_t> values(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      values[static_cast<size_t>(i)] = static_cast<int32_t>(
          reference + static_cast<int64_t>(rng.Next64() % (span + 1)));
    }
    const EncodedColumn col =
        EncodedColumn::PackWithLayout(values.data(), n, reference, bits);
    EXPECT_EQ(col.bits(), bits);
    EXPECT_EQ(col.reference(), reference);
    for (int i = 0; i < n; ++i) {
      ASSERT_EQ(col.Get(i), values[static_cast<size_t>(i)]) << i;
    }
  }
}

TEST(EncodedColumnTest, PackEmptyIsEmpty) {
  const EncodedColumn col = EncodedColumn::Pack(nullptr, 0);
  EXPECT_EQ(col.encoding(), Encoding::kPacked);
  EXPECT_EQ(col.rows(), 0);
  EXPECT_EQ(col.bits(), 1);
  EXPECT_EQ(col.encoded_bytes(), 0);
}

TEST(EncodedColumnTest, EncodeDispatchesOnOptions) {
  Rng rng(3);
  const std::vector<int32_t> values = RandomValues(&rng, 100, -5, 1000);
  AlignedVector<int32_t> plain_in(values.begin(), values.end());
  AlignedVector<int32_t> packed_in(values.begin(), values.end());

  StorageOptions plain_opts;  // default kPlain
  const EncodedColumn plain =
      EncodedColumn::Encode(std::move(plain_in), plain_opts);
  EXPECT_EQ(plain.encoding(), Encoding::kPlain);
  EXPECT_EQ(plain.bits(), 32);
  EXPECT_EQ(plain.encoded_bytes(), 100 * 4);

  StorageOptions packed_opts;
  packed_opts.encoding = Encoding::kPacked;
  const EncodedColumn packed =
      EncodedColumn::Encode(std::move(packed_in), packed_opts);
  EXPECT_EQ(packed.encoding(), Encoding::kPacked);
  EXPECT_LT(packed.encoded_bytes(), plain.encoded_bytes());

  // Decoded equality across encodings — the relation every engine's
  // conformance run depends on.
  EXPECT_TRUE(plain == packed);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(plain.Get(i), packed.Get(i)) << i;
    ASSERT_EQ(plain.Get(i), values[static_cast<size_t>(i)]) << i;
  }
}

TEST(EncodedColumnTest, DecodedEqualityDetectsDifferences) {
  const std::vector<int32_t> a = {1, 2, 3};
  std::vector<int32_t> b = a;
  b[2] = 4;
  const EncodedColumn pa = EncodedColumn::Pack(a.data(), 3);
  const EncodedColumn pb = EncodedColumn::Pack(b.data(), 3);
  EXPECT_TRUE(pa == pa);
  EXPECT_TRUE(pa != pb);
  const EncodedColumn shorter = EncodedColumn::Pack(a.data(), 2);
  EXPECT_TRUE(pa != shorter);
}

TEST(EncodedColumnTest, ViewMatchesOwnerForBothEncodings) {
  Rng rng(4);
  const std::vector<int32_t> values = RandomValues(&rng, 77, 0, 999);
  const EncodedColumn packed = EncodedColumn::Pack(values.data(), 77);
  const ColumnView pv = packed.view();
  EXPECT_TRUE(pv.packed());
  EXPECT_EQ(pv.rows(), 77);
  EXPECT_EQ(pv.bits(), packed.bits());
  EXPECT_EQ(pv.reference(), packed.reference());
  EXPECT_EQ(pv.encoded_bytes(), packed.encoded_bytes());

  AlignedVector<int32_t> owned(values.begin(), values.end());
  const EncodedColumn plain = EncodedColumn::FromPlain(std::move(owned));
  const ColumnView lv = plain.view();
  EXPECT_FALSE(lv.packed());
  EXPECT_EQ(lv.bits(), 32);
  EXPECT_EQ(lv.plain_data(), plain.data());  // zero-copy
  for (int64_t i = 0; i < 77; ++i) {
    ASSERT_EQ(pv.Get(i), values[static_cast<size_t>(i)]) << i;
    ASSERT_EQ(lv.Get(i), values[static_cast<size_t>(i)]) << i;
  }
}

// ---------------------------------------------------------------------
// Streaming builder (the datagen write path).

TEST(ColumnBuilderTest, PackedBuilderMatchesPack) {
  Rng rng(5);
  const int n = 1000;
  const int32_t reference = -7;
  const int bits = 13;
  std::vector<int32_t> values(static_cast<size_t>(n));
  for (int32_t& v : values) {
    v = reference + rng.UniformInt(0, (1 << bits) - 1);
  }

  ColumnBuilder builder(Encoding::kPacked, n, reference, bits);
  // Out-of-order single writes: each index exactly once, like the
  // generator's per-table column loops.
  for (int i = n - 1; i >= 0; --i) {
    builder.Set(i, values[static_cast<size_t>(i)]);
  }
  const EncodedColumn built = builder.Finish();
  const EncodedColumn packed =
      EncodedColumn::PackWithLayout(values.data(), n, reference, bits);
  EXPECT_EQ(built.bits(), bits);
  EXPECT_EQ(built.reference(), reference);
  EXPECT_TRUE(built == packed);
}

TEST(ColumnBuilderTest, PlainBuilderIgnoresLayout) {
  ColumnBuilder builder(Encoding::kPlain, 3, /*reference=*/100, /*bits=*/4);
  builder.Set(0, -1);
  builder.Set(1, 1 << 20);  // would not fit 4 bits; plain must not care
  builder.Set(2, 42);
  const EncodedColumn col = builder.Finish();
  EXPECT_EQ(col.encoding(), Encoding::kPlain);
  EXPECT_EQ(col.Get(0), -1);
  EXPECT_EQ(col.Get(1), 1 << 20);
  EXPECT_EQ(col.Get(2), 42);
}

// ---------------------------------------------------------------------
// CPU packed kernels vs the scalar PackedGet reference, under both SIMD
// dispatch states. Absolute starts are swept over word-phase offsets so
// the AVX2 lane-bit arithmetic sees every (start*bits)%32 residue class.

class PackedKernelsTest : public testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    simd_was_enabled_ = cpu::SimdEnabled();
    if (GetParam() && !cpu::SimdAvailable()) {
      GTEST_SKIP() << "AVX2 not available on this host";
    }
    cpu::SetSimdEnabled(GetParam());
  }
  void TearDown() override { cpu::SetSimdEnabled(simd_was_enabled_); }

 private:
  bool simd_was_enabled_ = true;
};

TEST_P(PackedKernelsTest, KernelsMatchScalarReference) {
  Rng rng(6);
  for (int bits : {1, 4, 6, 11, 16, 17, 24, 31, 32}) {
    const int32_t reference = bits % 2 == 0 ? -1000 : 19920101;
    const int64_t span = bits >= 32 ? 0xffffffffll : (1ll << bits) - 1;
    const int64_t rows = 3000;
    std::vector<int32_t> values(static_cast<size_t>(rows));
    for (int32_t& v : values) {
      v = static_cast<int32_t>(reference +
                               static_cast<int64_t>(rng.Next64() % (span + 1)));
    }
    const EncodedColumn col = EncodedColumn::PackWithLayout(
        values.data(), rows, reference, bits);
    const ColumnView view = col.view();
    const uint32_t* words = view.words();

    // A mid-domain range predicate with real selectivity at every width.
    const int32_t lo = static_cast<int32_t>(reference + span / 4);
    const int32_t hi = static_cast<int32_t>(reference + (3 * span) / 4);

    // Unaligned vector starts: 1024-aligned plus odd phases.
    for (int64_t start : {int64_t{0}, int64_t{1}, int64_t{37}, int64_t{1024},
                          int64_t{2029}}) {
      const int n = static_cast<int>(
          std::min<int64_t>(1024, rows - start));

      // Scalar reference.
      std::vector<int32_t> want_sel;
      for (int i = 0; i < n; ++i) {
        const int32_t v = cpu::PackedGet(words, bits, reference, start + i);
        ASSERT_EQ(v, values[static_cast<size_t>(start + i)])
            << "bits=" << bits << " row=" << start + i;
        if (v >= lo && v <= hi) want_sel.push_back(i);
      }

      // SelectRangePacked.
      std::vector<int32_t> sel(static_cast<size_t>(n) + 8);
      const int got = cpu::SelectRangePacked(words, bits, reference, start, n,
                                             lo, hi, sel.data());
      ASSERT_EQ(got, static_cast<int>(want_sel.size()))
          << "bits=" << bits << " start=" << start;
      for (int i = 0; i < got; ++i) {
        ASSERT_EQ(sel[static_cast<size_t>(i)], want_sel[static_cast<size_t>(i)])
            << "bits=" << bits << " start=" << start << " i=" << i;
      }

      // RefineRangePacked over a strided selection, in place (the engine
      // idiom), against a tighter predicate.
      const int32_t rlo = lo;
      const int32_t rhi = static_cast<int32_t>(reference + span / 2);
      std::vector<int32_t> refine(static_cast<size_t>(n) + 8);
      int m = 0;
      for (int i = 0; i < n; i += 3) refine[static_cast<size_t>(m++)] = i;
      std::vector<int32_t> want_refined;
      for (int i = 0; i < m; ++i) {
        const int32_t r = refine[static_cast<size_t>(i)];
        const int32_t v = cpu::PackedGet(words, bits, reference, start + r);
        if (v >= rlo && v <= rhi) want_refined.push_back(r);
      }
      const int kept = cpu::RefineRangePacked(words, bits, reference, start,
                                              refine.data(), m, rlo, rhi,
                                              refine.data());
      ASSERT_EQ(kept, static_cast<int>(want_refined.size()))
          << "bits=" << bits << " start=" << start;
      for (int i = 0; i < kept; ++i) {
        ASSERT_EQ(refine[static_cast<size_t>(i)],
                  want_refined[static_cast<size_t>(i)])
            << i;
      }

      // UnpackRange over the full vector.
      std::vector<int32_t> out(static_cast<size_t>(n), 0);
      cpu::UnpackRange(words, bits, reference, start, n, out.data());
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(out[static_cast<size_t>(i)],
                  values[static_cast<size_t>(start + i)])
            << "bits=" << bits << " start=" << start << " i=" << i;
      }

      // UnpackAt: scatter to selected slots only; others stay untouched.
      constexpr int32_t kSentinel = -2147000000;
      std::vector<int32_t> scatter(static_cast<size_t>(n), kSentinel);
      cpu::UnpackAt(words, bits, reference, start, sel.data(), got,
                    scatter.data());
      int next_sel = 0;
      for (int i = 0; i < n; ++i) {
        if (next_sel < got && sel[static_cast<size_t>(next_sel)] == i) {
          ASSERT_EQ(scatter[static_cast<size_t>(i)],
                    values[static_cast<size_t>(start + i)])
              << i;
          ++next_sel;
        } else {
          ASSERT_EQ(scatter[static_cast<size_t>(i)], kSentinel) << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SimdDispatch, PackedKernelsTest, testing::Bool(),
                         [](const testing::TestParamInfo<bool>& info) {
                           return info.param ? "simd" : "scalar";
                         });

// ---------------------------------------------------------------------
// Datagen contract: the storage knob changes layout only. One RNG stream,
// one draw order, so plain and packed runs are value-identical — the
// property the whole conformance matrix and the SF=10 streaming build
// rest on.

TEST(DatagenStorageTest, PackedAndPlainGenerateIdenticalValues) {
  ssb::DatagenOptions plain_opts;
  plain_opts.scale_factor = 1;
  plain_opts.fact_divisor = 2000;  // 3k fact rows: fast but word-straddling
  ssb::DatagenOptions packed_opts = plain_opts;
  packed_opts.storage.encoding = Encoding::kPacked;

  const ssb::Database plain = ssb::Generate(plain_opts);
  const ssb::Database packed = ssb::Generate(packed_opts);
  ASSERT_EQ(plain.lo.rows, packed.lo.rows);
  EXPECT_EQ(plain.storage, Encoding::kPlain);
  EXPECT_EQ(packed.storage, Encoding::kPacked);

  for (int c = 0; c < query::kNumFactCols; ++c) {
    const query::FactCol fc = static_cast<query::FactCol>(c);
    const EncodedColumn& p = query::FactColumn(plain, fc);
    const EncodedColumn& q = query::FactColumn(packed, fc);
    ASSERT_EQ(p.encoding(), Encoding::kPlain) << query::FactColName(fc);
    ASSERT_EQ(q.encoding(), Encoding::kPacked) << query::FactColName(fc);
    // Decoded equality over every row, and a real compression win.
    EXPECT_TRUE(p == q) << query::FactColName(fc);
    EXPECT_LT(q.encoded_bytes(), p.encoded_bytes()) << query::FactColName(fc);
    EXPECT_EQ(q.encoded_bytes(), PackedBytes(q.rows(), q.bits()));
  }
}

}  // namespace
}  // namespace crystal::storage
