// SIMD/scalar parity suite for the vector-ops primitives. Every test runs
// its subject twice — scalar path forced, then the AVX2 path when the host
// has it — and demands bit-identical outputs, across selectivities (0%,
// ~50%, 100%) and tail lengths that are not multiples of 8 or 1024. The
// engine-level counterpart is the conformance suite run with CRYSTAL_SIMD=0
// (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "cpu/hash_join.h"
#include "cpu/vector_ops.h"

namespace crystal::cpu {
namespace {

/// Restores the SIMD toggle on scope exit so tests cannot leak state.
class SimdGuard {
 public:
  SimdGuard() : saved_(SimdEnabled()) {}
  ~SimdGuard() { SetSimdEnabled(saved_); }

 private:
  bool saved_;
};

/// Runs `fn` with the scalar path forced and, when available, with the
/// SIMD path forced. `fn` receives a label for failure messages.
template <typename Fn>
void ForBothPaths(Fn fn) {
  SimdGuard guard;
  SetSimdEnabled(false);
  fn("scalar");
  if (SimdAvailable()) {
    SetSimdEnabled(true);
    fn("simd");
  }
}

std::vector<int32_t> RandomColumn(int n, uint64_t seed, int32_t max_value) {
  Rng rng(seed);
  std::vector<int32_t> col(static_cast<size_t>(n));
  for (auto& v : col) v = rng.UniformInt(0, max_value - 1);
  return col;
}

std::vector<int32_t> ReferenceSelect(const std::vector<int32_t>& col,
                                     int32_t lo, int32_t hi) {
  std::vector<int32_t> want;
  for (size_t i = 0; i < col.size(); ++i) {
    if (col[i] >= lo && col[i] <= hi) want.push_back(static_cast<int32_t>(i));
  }
  return want;
}

// Tail lengths deliberately off the 8-lane and 1024-vector grids.
const int kLengths[] = {0, 1, 7, 8, 9, 63, 100, 1000, 1023, 1024, 1025};

// (lo, hi) windows over values in [0, 100): empty, ~half, everything.
const int32_t kRanges[][2] = {{200, 300}, {0, 49}, {25, 24}, {0, 99}};

TEST(VectorOpsSelectTest, MatchesReferenceAcrossSelectivitiesAndTails) {
  for (int n : kLengths) {
    const auto col = RandomColumn(n, 17 + static_cast<uint64_t>(n), 100);
    for (const auto& range : kRanges) {
      const auto want = ReferenceSelect(col, range[0], range[1]);
      ForBothPaths([&](const char* label) {
        // Room for whole-register stores past the match count.
        std::vector<int32_t> sel(static_cast<size_t>(n) + 8, -1);
        const int m =
            SelectRange(col.data(), n, range[0], range[1], sel.data());
        ASSERT_EQ(static_cast<size_t>(m), want.size())
            << label << " n=" << n << " [" << range[0] << "," << range[1]
            << "]";
        for (int i = 0; i < m; ++i) {
          ASSERT_EQ(sel[static_cast<size_t>(i)], want[static_cast<size_t>(i)])
              << label << " n=" << n << " i=" << i;
        }
      });
    }
  }
}

TEST(VectorOpsRefineTest, InPlaceRefineMatchesReference) {
  for (int n : kLengths) {
    const auto col = RandomColumn(n, 23 + static_cast<uint64_t>(n), 100);
    const auto first = ReferenceSelect(col, 0, 59);  // ~60% survive stage 1
    for (const auto& range : kRanges) {
      std::vector<int32_t> want;
      for (int32_t s : first) {
        const int32_t v = col[static_cast<size_t>(s)];
        if (v >= range[0] && v <= range[1]) want.push_back(s);
      }
      ForBothPaths([&](const char* label) {
        std::vector<int32_t> sel(first.begin(), first.end());
        sel.resize(first.size() + 8, -1);
        const int m =
            RefineRange(col.data(), sel.data(),
                        static_cast<int>(first.size()), range[0], range[1],
                        sel.data());
        ASSERT_EQ(static_cast<size_t>(m), want.size()) << label << " n=" << n;
        for (int i = 0; i < m; ++i) {
          ASSERT_EQ(sel[static_cast<size_t>(i)], want[static_cast<size_t>(i)])
              << label << " n=" << n << " i=" << i;
        }
      });
    }
  }
}

struct ProbeReference {
  std::vector<int32_t> sel, val, pos;
};

ProbeReference ReferenceProbe(const HashTable& ht,
                              const std::vector<int32_t>& keys,
                              const std::vector<int32_t>* sel) {
  ProbeReference want;
  const int m = static_cast<int>(sel != nullptr ? sel->size() : keys.size());
  for (int i = 0; i < m; ++i) {
    const int32_t row = sel != nullptr ? (*sel)[static_cast<size_t>(i)] : i;
    int32_t value;
    if (ht.Lookup(keys[static_cast<size_t>(row)], &value)) {
      want.sel.push_back(row);
      want.val.push_back(value);
      want.pos.push_back(i);
    }
  }
  return want;
}

TEST(VectorOpsProbeTest, MatchesLookupAcrossTailsAndSelectivities) {
  ThreadPool pool(2);
  // Build side: every third key in [0, 3000) -> ~1/3 probe hit rate; plus
  // an always-hit and a never-hit table for the selectivity extremes.
  std::vector<int32_t> bkeys, bvals;
  for (int32_t k = 0; k < 3000; k += 3) {
    bkeys.push_back(k);
    bvals.push_back(k * 7);
  }
  HashTable third(1000);
  third.Build(bkeys.data(), bvals.data(),
              static_cast<int64_t>(bkeys.size()), pool);
  HashTable empty(1);  // never hits
  HashTable all(3000, /*max_fill=*/1.0);
  for (int32_t k = 0; k < 3000; ++k) all.Insert(k, k + 1);

  for (int n : kLengths) {
    const auto keys = RandomColumn(n, 29 + static_cast<uint64_t>(n), 3000);
    // Selection over every other row, exercising the gather path.
    std::vector<int32_t> half_sel;
    for (int i = 0; i < n; i += 2) half_sel.push_back(i);

    const std::vector<int32_t>* sel_variants[] = {nullptr, &half_sel};
    for (const HashTable* ht : {&third, &empty, &all}) {
      for (const std::vector<int32_t>* sel : sel_variants) {
        const ProbeReference want = ReferenceProbe(*ht, keys, sel);
        ForBothPaths([&](const char* label) {
          const int m =
              static_cast<int>(sel != nullptr ? sel->size() : keys.size());
          std::vector<int32_t> out_sel(static_cast<size_t>(m) + 8, -1);
          std::vector<int32_t> out_val(static_cast<size_t>(m) + 8, -1);
          std::vector<int32_t> out_pos(static_cast<size_t>(m) + 8, -1);
          if (sel != nullptr) {
            std::copy(sel->begin(), sel->end(), out_sel.begin());
          }
          // In-place on the selection vector, as the engine runs it.
          const int got = ProbeSelect(
              *ht, keys.data(), sel != nullptr ? out_sel.data() : nullptr, m,
              out_sel.data(), out_val.data(), out_pos.data());
          ASSERT_EQ(static_cast<size_t>(got), want.sel.size())
              << label << " n=" << n;
          for (int i = 0; i < got; ++i) {
            ASSERT_EQ(out_sel[static_cast<size_t>(i)],
                      want.sel[static_cast<size_t>(i)])
                << label << " n=" << n << " i=" << i;
            ASSERT_EQ(out_val[static_cast<size_t>(i)],
                      want.val[static_cast<size_t>(i)])
                << label << " n=" << n << " i=" << i;
            ASSERT_EQ(out_pos[static_cast<size_t>(i)],
                      want.pos[static_cast<size_t>(i)])
                << label << " n=" << n << " i=" << i;
          }
        });
      }
    }
  }
}

TEST(VectorOpsProbeTest, OptionalOutputsMayBeNull) {
  ThreadPool pool(1);
  std::vector<int32_t> bkeys = {2, 4, 6, 8};
  std::vector<int32_t> bvals = {20, 40, 60, 80};
  HashTable ht(4);
  ht.Build(bkeys.data(), bvals.data(), 4, pool);
  const std::vector<int32_t> keys = {0, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  ForBothPaths([&](const char* label) {
    std::vector<int32_t> out_sel(keys.size() + 8, -1);
    const int got =
        ProbeSelect(ht, keys.data(), nullptr, static_cast<int>(keys.size()),
                    out_sel.data(), nullptr, nullptr);
    ASSERT_EQ(got, 4) << label;
    EXPECT_EQ(out_sel[0], 1) << label;
    EXPECT_EQ(out_sel[3], 7) << label;
  });
}

// A probe key of -1 encodes to key+1 == 0, the empty-slot marker; the SIMD
// path must treat it as a miss (empty wins over match), like Lookup does.
TEST(VectorOpsProbeTest, NegativeProbeKeysNeverMatch) {
  ThreadPool pool(1);
  std::vector<int32_t> bkeys = {0, 1, 2, 3};
  std::vector<int32_t> bvals = {5, 6, 7, 8};
  HashTable ht(4);
  ht.Build(bkeys.data(), bvals.data(), 4, pool);
  const std::vector<int32_t> keys = {-1, -1, 2, -7, -1, 0, -2, -1, -1, -1};
  ForBothPaths([&](const char* label) {
    std::vector<int32_t> out_sel(keys.size() + 8, -1);
    std::vector<int32_t> out_val(keys.size() + 8, -1);
    const int got =
        ProbeSelect(ht, keys.data(), nullptr, static_cast<int>(keys.size()),
                    out_sel.data(), out_val.data(), nullptr);
    ASSERT_EQ(got, 2) << label;
    EXPECT_EQ(out_sel[0], 2) << label;
    EXPECT_EQ(out_val[0], 7) << label;
    EXPECT_EQ(out_sel[1], 5) << label;
    EXPECT_EQ(out_val[1], 5) << label;
  });
}

// Vector-ops side of the infinite-probe regression: misses against the
// fullest legal table (one empty slot) must terminate on both paths.
TEST(VectorOpsProbeTest, MissProbeTerminatesOnMaximallyFullTable) {
  HashTable ht(7, /*max_fill=*/1.0);
  ASSERT_EQ(ht.num_slots(), 8);
  for (int32_t k = 0; k < 7; ++k) ht.Insert(k * 2, k);  // even keys only
  std::vector<int32_t> keys;
  for (int32_t k = 1; k < 33; k += 2) keys.push_back(k);  // all misses
  ForBothPaths([&](const char* label) {
    std::vector<int32_t> out_sel(keys.size() + 8, -1);
    const int got =
        ProbeSelect(ht, keys.data(), nullptr, static_cast<int>(keys.size()),
                    out_sel.data(), nullptr, nullptr);
    EXPECT_EQ(got, 0) << label;
  });
}

TEST(VectorOpsCompactTest, CompactsCarriedVectorsInPlace) {
  std::vector<int32_t> v = {10, 11, 12, 13, 14, 15, 16, 17};
  const std::vector<int32_t> pos = {0, 2, 3, 7};
  CompactInPlace(v.data(), pos.data(), static_cast<int>(pos.size()));
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 12);
  EXPECT_EQ(v[2], 13);
  EXPECT_EQ(v[3], 17);
}

TEST(VectorOpsDispatchTest, ToggleIsStickyAndSafe) {
  SimdGuard guard;
  SetSimdEnabled(false);
  EXPECT_FALSE(SimdEnabled());
  SetSimdEnabled(true);
  // Enabling succeeds exactly when the host + build support AVX2.
  EXPECT_EQ(SimdEnabled(), SimdAvailable());
}

}  // namespace
}  // namespace crystal::cpu
