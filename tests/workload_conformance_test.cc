// Generated-workload conformance: a pinned-seed suite from the workload
// generator, run through every engine in the global registry against the
// tuple-at-a-time reference interpreter. This closes the loop the
// hand-written ad-hoc panel cannot: the generator emits shapes (aggregate
// lists, expression trees, LIKE filters, group pairs) drawn from the whole
// grammar, so grammar/engine drift surfaces here first. The ctest variants
// registered in tests/CMakeLists.txt re-run the matrix with the SIMD fast
// path disabled and over bit-packed fact storage (ctest -L conformance).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/macros.h"
#include "engine/query_engine.h"
#include "engine/registry.h"
#include "ssb/datagen.h"
#include "ssb/queries.h"
#include "storage/encoded_column.h"
#include "workload/workload.h"

namespace crystal::engine {
namespace {

// Pinned so a failure names a reproducible query ("wl03 of seed
// 20200302"); 10 specs keeps engines x specs x storage variants in the
// seconds range. The CI smoke step runs a 12-spec suite of the same seed
// through the driver binary, so the two layers cover the same workload.
constexpr uint64_t kSeed = 20200302;
constexpr int kCount = 10;

const ssb::Database& ConformanceDb() {
  static const ssb::Database* db = [] {
    ssb::DatagenOptions gen;
    gen.scale_factor = 1;
    gen.fact_divisor = 1000;
    const char* storage = std::getenv("CRYSTAL_STORAGE");
    if (storage != nullptr && storage[0] != '\0') {
      CRYSTAL_CHECK_MSG(
          storage::EncodingFromName(storage, &gen.storage.encoding),
          "CRYSTAL_STORAGE must be 'plain' or 'packed'");
    }
    return new ssb::Database(ssb::Generate(gen));
  }();
  return *db;
}

const std::vector<workload::GeneratedQuery>& Suite() {
  static const auto* suite = [] {
    workload::GenOptions options;
    options.seed = kSeed;
    options.count = kCount;
    return new std::vector<workload::GeneratedQuery>(
        workload::GenerateWorkload(options));
  }();
  return *suite;
}

QueryEngine* EngineFor(const std::string& name) {
  static auto* engines =
      new std::map<std::string, std::unique_ptr<QueryEngine>>();
  auto it = engines->find(name);
  if (it == engines->end()) {
    EngineContext context;
    context.db = &ConformanceDb();
    context.threads = 2;
    it = engines->emplace(
        name, EngineRegistry::Global().Create(name, context)).first;
  }
  return it->second.get();
}

const ssb::QueryResult& ExpectedResult(int index) {
  static auto* cache = new std::map<int, ssb::QueryResult>();
  auto it = cache->find(index);
  if (it == cache->end()) {
    it = cache->emplace(index,
                        ssb::RunReference(
                            ConformanceDb(),
                            Suite()[static_cast<size_t>(index)].spec))
             .first;
  }
  return it->second;
}

class WorkloadConformanceTest
    : public testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(WorkloadConformanceTest, MatchesReference) {
  const auto& [name, index] = GetParam();
  const workload::GeneratedQuery& q = Suite()[static_cast<size_t>(index)];

  QueryEngine* engine = EngineFor(name);
  ASSERT_NE(engine, nullptr) << name;
  const RunStats stats = engine->Execute(q.spec);
  const ssb::QueryResult& want = ExpectedResult(index);
  EXPECT_TRUE(stats.result == want)
      << name << " disagrees with reference on " << q.spec.name << " (seed "
      << kSeed << "): got " << stats.result.ToString() << " want "
      << want.ToString();

  // Structural invariants the annotations promise: the emitted value count
  // matches the aggregate plan, and grouped queries stay within the dense
  // grid the generator computed.
  EXPECT_EQ(stats.result.num_values, q.agg_values) << q.spec.name;
  EXPECT_LE(static_cast<int64_t>(stats.result.group_keys.size()),
            q.group_cells)
      << q.spec.name;
}

std::string ParamName(
    const testing::TestParamInfo<WorkloadConformanceTest::ParamType>& info) {
  std::string name = std::get<0>(info.param) + "_" +
                     Suite()[static_cast<size_t>(std::get<1>(info.param))]
                         .spec.name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, WorkloadConformanceTest,
    testing::Combine(testing::ValuesIn(EngineRegistry::Global().Names()),
                     testing::Range(0, kCount)),
    ParamName);

}  // namespace
}  // namespace crystal::engine
