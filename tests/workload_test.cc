// Workload generator suite (src/workload): determinism, the prefix
// property, suite-file round-trips, and the structural guarantees every
// generated spec must satisfy (validity, non-degenerate selectivity, axis
// coverage). The cross-engine execution of generated suites lives in
// tests/workload_conformance_test.cc.
#include "workload/workload.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "query/query_spec.h"

namespace crystal::workload {
namespace {

GenOptions Opts(uint64_t seed, int count) {
  GenOptions o;
  o.seed = seed;
  o.count = count;
  return o;
}

TEST(WorkloadGeneratorTest, SameSeedIsByteIdentical) {
  const GenOptions options = Opts(20200302, 32);
  const std::string a = FormatSuite(options, GenerateWorkload(options));
  const std::string b = FormatSuite(options, GenerateWorkload(options));
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(WorkloadGeneratorTest, DifferentSeedsDiffer) {
  const GenOptions a = Opts(1, 16);
  const GenOptions b = Opts(2, 16);
  EXPECT_NE(FormatSuite(a, GenerateWorkload(a)),
            FormatSuite(b, GenerateWorkload(b)));
}

TEST(WorkloadGeneratorTest, LongerCountExtendsShorterAsPrefix) {
  const std::vector<GeneratedQuery> small =
      GenerateWorkload(Opts(20200302, 12));
  const std::vector<GeneratedQuery> large =
      GenerateWorkload(Opts(20200302, 24));
  ASSERT_EQ(small.size(), 12u);
  ASSERT_EQ(large.size(), 24u);
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_TRUE(small[i].spec == large[i].spec) << small[i].spec.name;
    EXPECT_EQ(small[i].selectivity, large[i].selectivity);
  }
}

TEST(WorkloadGeneratorTest, EverySpecValidatesWithLiveSelectivity) {
  for (const GeneratedQuery& q : GenerateWorkload(Opts(20200302, 48))) {
    std::string error;
    EXPECT_TRUE(query::Validate(q.spec, &error))
        << q.spec.name << ": " << error;
    // A generated predicate that can never match (e.g. a LIKE pattern
    // missing the dictionary) would make the query a no-op; the generator
    // must only emit filters that keep some fact rows alive.
    EXPECT_GT(q.selectivity, 0.0) << q.spec.name;
    EXPECT_LE(q.selectivity, 1.0) << q.spec.name;
    EXPECT_GE(q.joins, 0);
    EXPECT_GE(q.group_cells, 1);
    EXPECT_GE(q.agg_values, 1);
  }
}

TEST(WorkloadGeneratorTest, SweepCoversEveryAxis) {
  // 48 queries of the 192-combination grid must exercise both endpoints of
  // each axis: scalar and grouped, no-join and multi-join, single- and
  // multi-aggregate, wide and narrow selectivity.
  std::set<int> join_counts;
  bool scalar = false, grouped = false, multi_agg = false, single_agg = false;
  double min_sel = 1.0, max_sel = 0.0;
  for (const GeneratedQuery& q : GenerateWorkload(Opts(20200302, 48))) {
    join_counts.insert(q.joins);
    (q.group_cells == 1 ? scalar : grouped) = true;
    (q.agg_values > 1 ? multi_agg : single_agg) = true;
    min_sel = std::min(min_sel, q.selectivity);
    max_sel = std::max(max_sel, q.selectivity);
  }
  EXPECT_GE(join_counts.size(), 3u);
  EXPECT_TRUE(join_counts.count(0) == 1);
  EXPECT_TRUE(scalar);
  EXPECT_TRUE(grouped);
  EXPECT_TRUE(multi_agg);
  EXPECT_TRUE(single_agg);
  EXPECT_LT(min_sel, 0.01);
  EXPECT_GT(max_sel, 0.1);
}

TEST(WorkloadSuiteFileTest, FormatThenParseRoundTrips) {
  const GenOptions options = Opts(7, 24);
  const std::vector<GeneratedQuery> suite = GenerateWorkload(options);
  const std::string text = FormatSuite(options, suite);

  std::vector<GeneratedQuery> parsed;
  std::string error;
  ASSERT_TRUE(ParseSuite(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), suite.size());
  for (size_t i = 0; i < suite.size(); ++i) {
    EXPECT_TRUE(parsed[i].spec == suite[i].spec) << suite[i].spec.name;
    // Recomputable annotations survive the text round-trip; the analytic
    // selectivity does not (it needs generator state) and stays -1.
    EXPECT_EQ(parsed[i].joins, suite[i].joins);
    EXPECT_EQ(parsed[i].group_cells, suite[i].group_cells);
    EXPECT_EQ(parsed[i].agg_values, suite[i].agg_values);
    EXPECT_EQ(parsed[i].selectivity, -1);
  }
}

TEST(WorkloadSuiteFileTest, IgnoresCommentsAndBlankLines) {
  std::vector<GeneratedQuery> parsed;
  std::string error;
  ASSERT_TRUE(ParseSuite("# header\n\nq: sum revenue\n\n# trailing\n",
                         &parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].spec.name, "q");
}

TEST(WorkloadSuiteFileTest, RejectsMalformedLinesWithLineNumbers) {
  std::vector<GeneratedQuery> parsed;
  std::string error;
  EXPECT_FALSE(ParseSuite("q1: sum revenue\nno colon here\n", &parsed,
                          &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;

  error.clear();
  EXPECT_FALSE(ParseSuite("q1: sum gold\n", &parsed, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("q1"), std::string::npos) << error;
}

}  // namespace
}  // namespace crystal::workload
