// crystaldb: unified SSB driver. Runs any subset of the 13 Star Schema
// Benchmark queries on any subset of the registered engines (see
// --list-engines), cross-checks that every engine returns identical
// results, and prints a JSON report with per-query wall times and the
// timing model's predicted kernel times.
//
// With --serve it instead becomes a long-running query service: line-
// delimited QuerySpec text on stdin, JSON results on stdout, concurrent
// in-flight queries fused into shared scans (docs/SERVER.md).
//
//   crystaldb --engines=all --queries=all --sf=1
//   crystaldb --engines=vectorized-cpu,coprocessor --queries=q2.1,q4
//             --sf=20 --fact-divisor=20 --out=report.json
//   crystaldb --serve --sf=1,10 --serve-check
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/memory.h"
#include "driver/driver.h"
#include "engine/registry.h"
#include "query/parser.h"
#include "query/ssb_specs.h"
#include "server/serve.h"
#include "ssb/datagen.h"
#include "storage/encoded_column.h"
#include "workload/workload.h"

namespace {

constexpr const char kUsage[] = R"(crystaldb - unified SSB multi-engine driver

Usage: crystaldb [flags]

Flags:
  --engines=LIST     Comma-separated engine names or aliases, or "all"
                     (default). `--list-engines` prints the registry.
  --queries=LIST     Comma-separated queries, or "all" (default). A token
                     selects one query (q2.1) or a whole flight (q2).
  --adhoc=SPEC       Ad-hoc declarative query in the QuerySpec grammar (see
                     docs/QUERIES.md), e.g. --adhoc="sum revenue join
                     supplier on suppkey filter s_region = 2". Repeatable;
                     runs after --queries (alone when --queries is absent)
                     and is cross-checked like any canonical query. Parse
                     errors print a caret diagnostic on stderr.
  --adhoc-file=FILE  Load ad-hoc queries from a workload suite file: one
                     `name: spec` line per query, '#' comments ignored —
                     the format tools/workload_gen emits (docs/WORKLOADS.md).
                     Repeatable; combines with --adhoc.
  --sf=N             SSB scale factor (default 1). With --serve a comma
                     list (--sf=1,10) loads several resident databases,
                     addressable per request as @sf1, @sf10.
  --fact-divisor=N   Fact-table subsampling divisor: the fact table holds
                     6M*SF/N rows while dimensions keep full SF cardinality;
                     predicted times are scaled back exactly (default 1).
  --seed=N           Datagen seed (default 20200302). The seed actually used
                     is recorded in the database and echoed in the report.
  --storage=NAME     Fact-column storage encoding: plain (4-byte arrays,
                     default) or packed (bit-packed with per-column widths;
                     see docs/STORAGE.md). Results are identical either way;
                     modeled traffic and PCIe volume shrink with packed.
  --threads=N        Host threads for host-threaded engines
                     (default 0 = hardware concurrency).
  --repeat=N         Timed executions per engine x query (default 1).
                     wall_ms in the report is the median across them and
                     wall_min_ms the minimum — the perf-measurement mode
                     documented in docs/PERF.md.
  --warmup=K         Untimed executions before the timed ones (default 0).
  --profile=NAME     Device profile for simulated engines: v100 (default)
                     or skylake (Table 2 numbers).
  --block-threads=N  Tile geometry override for simulated kernels:
                     threads per block (default 128).
  --items-per-thread=N
                     Tile geometry override: items per thread (default 4).
  --no-check         Skip the cross-check against the reference engine.
  --out=FILE         Write the JSON report to FILE instead of stdout
                     (--output=FILE is accepted as a synonym).
  --list-engines     Print registered engines (name, aliases, description)
                     and exit.
  --list-queries     Print the 13 canonical queries and the TPC-H analogs
                     (name, referenced fact columns, full spec in the
                     ad-hoc grammar) and exit.
  --help             Show this message.

Server mode (docs/SERVER.md):
  --serve            Run as a long-running query service on stdin/stdout:
                     one request per line — a canonical query name (q2.1)
                     or an ad-hoc spec, optionally prefixed with @DATABASE
                     and/or timeout=MS — one JSON response per line, in
                     completion order. Concurrent in-flight queries over
                     one database fuse into shared scans. Honors --sf,
                     --fact-divisor, --seed, --storage, --threads.
  --serve-batch=N    Max queries fused into one shared scan (default 16).
  --serve-queue=N    Admission queue bound; beyond it requests are
                     rejected, not queued (default 256).
  --serve-timeout=MS Default per-query deadline in ms; 0 = none (default).
  --serve-rows=N     Max group rows inlined per response (default 1000).
  --serve-check      Cross-check every result against the reference
                     interpreter; any mismatch exits 2.
  --serve-watchdog=MS  Flag batches whose morsel heartbeat stalls for MS
                     ms (stderr + server_stats; default 5000, 0 = off).
  --mem-budget=SPEC  Memory governor limit: bytes with an optional k/m/g
                     binary suffix ("256m", "2g"); 0 = account but never
                     enforce. Default: inherit CRYSTAL_MEM_BUDGET, else
                     unenforced. See docs/ROBUSTNESS.md, "Memory
                     governance".

  SIGINT/SIGTERM shut the service down gracefully: input stops, in-flight
  queries drain (each still gets its response line), the final
  server_stats line is emitted, exit status 0. Failure modes, the
  retryable contract, and the CRYSTAL_FAULT injection grammar are in
  docs/ROBUSTNESS.md.

Exit status: 0 on success with matching results, 1 on flag errors or
invalid --adhoc specs, 2 when engine results disagree (any engine differing
from any other, or from the tuple-at-a-time reference unless --no-check; in
server mode: any --serve-check mismatch) — so the driver doubles as an
integration check in scripts and CI.
)";

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  return false;
}

int FlagError(const std::string& message) {
  std::fprintf(stderr, "crystaldb: %s\n", message.c_str());
  std::fprintf(stderr, "Try 'crystaldb --help'.\n");
  return 1;
}

void PrintQuerySpecLine(const crystal::query::QuerySpec& spec) {
  std::printf("  %-7s [%d fact columns]\n", spec.name.c_str(),
              crystal::query::FactColumnsReferenced(spec));
  std::printf("          %s\n",
              crystal::query::FormatQuerySpec(spec).c_str());
}

int ListQueries() {
  std::printf(
      "Canonical SSB queries (crystaldb --queries=...), as specs runnable "
      "via --adhoc:\n\n");
  for (crystal::ssb::QueryId id : crystal::ssb::kAllQueries) {
    PrintQuerySpecLine(crystal::query::SsbSpec(id));
  }
  std::printf(
      "\nTPC-H analogs on the SSB schema (docs/QUERIES.md), runnable via "
      "--adhoc with the\nspec text below; seeded suites of the same shapes "
      "come from tools/workload_gen:\n\n");
  PrintQuerySpecLine(crystal::query::TpchQ1Analog());
  PrintQuerySpecLine(crystal::query::TpchQ6Analog());
  return 0;
}

int ListEngines() {
  const auto& registry = crystal::engine::EngineRegistry::Global();
  std::printf("Registered engines (crystaldb --engines=...):\n\n");
  for (const crystal::engine::EngineRegistration* e : registry.All()) {
    std::string aliases;
    for (const std::string& alias : e->aliases) {
      aliases += aliases.empty() ? "" : ", ";
      aliases += alias;
    }
    std::printf("  %-16s %s\n", e->name.c_str(),
                aliases.empty() ? "" : ("aliases: " + aliases).c_str());
    std::printf("                   %s\n", e->description.c_str());
  }
  return 0;
}

}  // namespace

namespace {

/// Parses "1" or "1,10" into positive scale factors.
bool ParseSfList(const char* value, std::vector<int>* out) {
  out->clear();
  std::string token;
  for (const char* p = value;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (token.empty()) return false;
      const int sf = std::atoi(token.c_str());
      if (sf < 1) return false;
      out->push_back(sf);
      token.clear();
      if (*p == '\0') break;
    } else {
      token.push_back(*p);
    }
  }
  return !out->empty();
}

/// Server-style error JSON for one invalid --adhoc spec, matching the
/// shape Serve() emits for a malformed request line (docs/SERVER.md).
void PrintAdhocErrorJson(int index, const std::string& input,
                         const std::string& error) {
  std::string json = "{\"query\": \"adhoc" + std::to_string(index) +
                     "\", \"status\": \"error\", \"error\": ";
  crystal::server::AppendJsonString(&json, error);
  json += ", \"input\": ";
  crystal::server::AppendJsonString(&json, input);
  json += "}";
  std::printf("%s\n", json.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  crystal::driver::Options options;
  std::string output_path;
  bool queries_given = false;
  bool serve = false;
  crystal::server::ServeConfig serve_config;
  // Service default: a stalled shared scan should be visible within a few
  // seconds (--serve-watchdog overrides; embedded QueryServer uses leave
  // the watchdog opt-in).
  serve_config.server.watchdog_ms = 5000;
  std::vector<int> scale_factors{1};
  int adhoc_count = 0;
  int adhoc_invalid = 0;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    std::string error;
    if (ParseFlag(arg, "--help", &value) ||
        std::strcmp(arg, "-h") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (ParseFlag(arg, "--list-engines", &value)) {
      return ListEngines();
    }
    if (ParseFlag(arg, "--list-queries", &value)) {
      return ListQueries();
    }
    if (ParseFlag(arg, "--engines", &value)) {
      if (value == nullptr) return FlagError("--engines needs a value");
      if (!crystal::driver::ParseEngineList(value, &options.engines, &error))
        return FlagError(error);
    } else if (ParseFlag(arg, "--queries", &value)) {
      if (value == nullptr) return FlagError("--queries needs a value");
      if (!crystal::driver::ParseQueryList(value, &options.queries, &error))
        return FlagError(error);
      queries_given = true;
    } else if (ParseFlag(arg, "--adhoc-file", &value)) {
      if (value == nullptr) return FlagError("--adhoc-file needs a path");
      std::FILE* f = std::fopen(value, "rb");
      if (f == nullptr)
        return FlagError(std::string("cannot open '") + value + "'");
      std::string text;
      char buf[4096];
      for (size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;)
        text.append(buf, n);
      std::fclose(f);
      std::vector<crystal::workload::GeneratedQuery> suite;
      if (!crystal::workload::ParseSuite(text, &suite, &error))
        return FlagError(std::string(value) + ": " + error);
      for (crystal::workload::GeneratedQuery& q : suite)
        options.adhoc.push_back(std::move(q.spec));
    } else if (ParseFlag(arg, "--adhoc", &value)) {
      if (value == nullptr) return FlagError("--adhoc needs a spec");
      // Batch semantics: every spec is validated and every failure
      // diagnosed (server-style error JSON + a caret diagnostic on
      // stderr), then exit 1 below — a bad spec in a list is never
      // silently skipped.
      ++adhoc_count;
      crystal::query::QuerySpec spec;
      crystal::query::ParseDiagnostic diag;
      if (!crystal::query::ParseQuerySpec(value, &spec, &diag)) {
        ++adhoc_invalid;
        error = diag.message;
        if (diag.position != crystal::query::ParseDiagnostic::kNoPosition)
          error += " (at offset " + std::to_string(diag.position) + ")";
        PrintAdhocErrorJson(adhoc_count, value, error);
        std::fprintf(stderr, "crystaldb: --adhoc spec %d is invalid\n%s\n",
                     adhoc_count,
                     crystal::query::CaretDiagnostic(value, diag).c_str());
        continue;
      }
      options.adhoc.push_back(std::move(spec));
    } else if (ParseFlag(arg, "--sf", &value)) {
      if (value == nullptr || !ParseSfList(value, &scale_factors))
        return FlagError("--sf needs a positive integer (or a comma list "
                         "with --serve)");
      options.scale_factor = scale_factors.front();
    } else if (ParseFlag(arg, "--serve", &value)) {
      serve = true;
    } else if (ParseFlag(arg, "--serve-batch", &value)) {
      if (value == nullptr || std::atoi(value) < 1)
        return FlagError("--serve-batch needs a positive integer");
      serve_config.server.max_batch = std::atoi(value);
    } else if (ParseFlag(arg, "--serve-queue", &value)) {
      if (value == nullptr || std::atoi(value) < 1)
        return FlagError("--serve-queue needs a positive integer");
      serve_config.server.max_queue = std::atoi(value);
    } else if (ParseFlag(arg, "--serve-timeout", &value)) {
      if (value == nullptr || std::atof(value) < 0)
        return FlagError("--serve-timeout needs a non-negative number");
      serve_config.server.default_timeout_ms = std::atof(value);
    } else if (ParseFlag(arg, "--serve-rows", &value)) {
      if (value == nullptr || std::atoi(value) < 0)
        return FlagError("--serve-rows needs a non-negative integer");
      serve_config.max_result_rows = std::atoi(value);
    } else if (ParseFlag(arg, "--serve-check", &value)) {
      serve_config.check = true;
    } else if (ParseFlag(arg, "--serve-watchdog", &value)) {
      if (value == nullptr || std::atof(value) < 0)
        return FlagError("--serve-watchdog needs a non-negative number");
      serve_config.server.watchdog_ms = std::atof(value);
    } else if (ParseFlag(arg, "--mem-budget", &value)) {
      int64_t budget_bytes = 0;
      if (value == nullptr ||
          !crystal::ParseMemBytes(value, &budget_bytes)) {
        return FlagError(
            "--mem-budget needs bytes with an optional k/m/g suffix");
      }
      // Install on the process budget directly so standalone driver runs
      // are governed too, not just --serve (the server ctor re-installs
      // the same limit via ServerOptions).
      crystal::MemoryBudget::Process().set_limit(budget_bytes);
      serve_config.server.memory_budget_bytes = budget_bytes;
    } else if (ParseFlag(arg, "--fact-divisor", &value)) {
      if (value == nullptr || std::atoi(value) < 1)
        return FlagError("--fact-divisor needs a positive integer");
      options.fact_divisor = std::atoi(value);
    } else if (ParseFlag(arg, "--seed", &value)) {
      if (value == nullptr) return FlagError("--seed needs a value");
      char* end = nullptr;
      options.seed = std::strtoull(value, &end, 10);
      if (end == value || *end != '\0')
        return FlagError("--seed needs an unsigned integer");
    } else if (ParseFlag(arg, "--storage", &value)) {
      if (value == nullptr) return FlagError("--storage needs a value");
      if (!crystal::driver::ParseStorageName(value, &error))
        return FlagError(error);
      options.storage = value;
    } else if (ParseFlag(arg, "--threads", &value)) {
      if (value == nullptr || std::atoi(value) < 0)
        return FlagError("--threads needs a non-negative integer");
      options.threads = std::atoi(value);
    } else if (ParseFlag(arg, "--repeat", &value)) {
      if (value == nullptr || std::atoi(value) < 1)
        return FlagError("--repeat needs a positive integer");
      options.repeat = std::atoi(value);
    } else if (ParseFlag(arg, "--warmup", &value)) {
      if (value == nullptr || std::atoi(value) < 0)
        return FlagError("--warmup needs a non-negative integer");
      options.warmup = std::atoi(value);
    } else if (ParseFlag(arg, "--profile", &value)) {
      if (value == nullptr) return FlagError("--profile needs a value");
      if (!crystal::driver::ParseProfileName(value, &error))
        return FlagError(error);
      options.profile = value;
    } else if (ParseFlag(arg, "--block-threads", &value)) {
      if (value == nullptr || std::atoi(value) < 1)
        return FlagError("--block-threads needs a positive integer");
      options.block_threads = std::atoi(value);
    } else if (ParseFlag(arg, "--items-per-thread", &value)) {
      if (value == nullptr || std::atoi(value) < 1)
        return FlagError("--items-per-thread needs a positive integer");
      options.items_per_thread = std::atoi(value);
    } else if (ParseFlag(arg, "--no-check", &value)) {
      options.check_against_reference = false;
    } else if (ParseFlag(arg, "--output", &value) ||
               ParseFlag(arg, "--out", &value)) {
      if (value == nullptr) return FlagError("--out needs a path");
      output_path = value;
    } else {
      return FlagError(std::string("unknown flag '") + arg + "'");
    }
  }

  if (adhoc_invalid > 0) {
    std::fprintf(stderr, "crystaldb: %d of %d --adhoc spec(s) invalid\n",
                 adhoc_invalid, adhoc_count);
    return 1;
  }
  if (!serve && scale_factors.size() > 1) {
    return FlagError("--sf accepts a comma list only with --serve");
  }

  if (serve) {
    // Generate every resident database up front (named sf<N>), then hand
    // stdin/stdout to the protocol loop. --threads feeds the server's
    // scan pool; 0 defers to CRYSTAL_THREADS / the hardware.
    serve_config.server.threads = options.threads;
    for (size_t a = 0; a < scale_factors.size(); ++a) {
      for (size_t b = a + 1; b < scale_factors.size(); ++b) {
        if (scale_factors[a] == scale_factors[b])
          return FlagError("--sf lists the same scale factor twice");
      }
    }
    crystal::storage::StorageOptions storage_options;
    {
      std::string error;
      if (!crystal::driver::ParseStorageName(options.storage, &error))
        return FlagError(error);
      crystal::storage::EncodingFromName(options.storage,
                                         &storage_options.encoding);
    }
    std::vector<crystal::ssb::Database> databases;
    databases.reserve(scale_factors.size());
    std::vector<std::pair<std::string, const crystal::ssb::Database*>> dbs;
    for (const int sf : scale_factors) {
      crystal::ssb::DatagenOptions gen;
      gen.scale_factor = sf;
      gen.fact_divisor = options.fact_divisor;
      gen.seed = options.seed;
      gen.storage = storage_options;
      databases.push_back(crystal::ssb::Generate(gen));
    }
    for (size_t d = 0; d < databases.size(); ++d) {
      dbs.emplace_back("sf" + std::to_string(scale_factors[d]),
                       &databases[d]);
    }
    std::fprintf(stderr,
                 "crystaldb: serving %zu database(s) on stdin/stdout "
                 "(one request per line; docs/SERVER.md)\n",
                 dbs.size());
    // Graceful SIGINT/SIGTERM: stop reading, drain in-flight queries,
    // emit the final server_stats line, exit 0 (docs/ROBUSTNESS.md).
    crystal::server::InstallSignalHandlers();
    return crystal::server::Serve(std::cin, std::cout, dbs, serve_config);
  }

  // `--adhoc` without `--queries` runs only the ad-hoc specs; the default
  // all-13 list applies when neither flag is present.
  if (!options.adhoc.empty() && !queries_given) options.queries.clear();

  const crystal::driver::Report report = crystal::driver::Run(options);
  const std::string json = crystal::driver::ToJson(report);

  if (output_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(output_path.c_str(), "w");
    if (f == nullptr) return FlagError("cannot open '" + output_path + "'");
    const bool write_ok = std::fputs(json.c_str(), f) >= 0;
    if (std::fclose(f) != 0 || !write_ok)
      return FlagError("error writing '" + output_path + "'");
    std::fprintf(stderr, "crystaldb: report written to %s\n",
                 output_path.c_str());
  }

  if (!report.all_results_match) {
    std::fprintf(stderr, "crystaldb: ENGINE RESULTS DISAGREE (see report)\n");
    return 2;
  }
  return 0;
}
