// perf_diff: compares two bench JSONs (BENCH_*.json) and prints per-metric
// and geomean ratios. Used by CI's perf-smoke steps to diff fresh runs
// against the checked-in baselines, and by hand when refreshing
// BENCH_cpu_ssb.json / BENCH_server.json:
//
//   perf_diff BASELINE.json NEW.json [--max-regression=R]
//
// Two schemas are understood, keyed on the file's shape:
//   - engine_throughput ("queries" array): one metric per query, its
//     wall_median_ms (lower is better);
//   - server_throughput ("levels" array): per concurrency level, qps
//     (higher is better) and p99_ms (lower is better), plus the
//     sequential-replay qps.
//
// Ratios are oriented so > 1 always means NEW improved on BASELINE.
// With --max-regression=R (e.g. 1.10 = "no metric more than 10% worse"),
// exit status 2 signals that some metric moved beyond R x its baseline in
// the bad direction — but only when the two files were measured under
// comparable settings (same scale factor, fact divisor, thread count, and
// SIMD state); incomparable files print a warning and never gate, since
// e.g. CI's subsampled smoke run is not commensurate with the checked-in
// full-scale baseline.
//
// The parser below covers the JSON subset our benches emit (objects,
// arrays, strings without escapes beyond \" and \\, numbers, booleans,
// null) — a dependency-free tool beats a JSON library for one flat schema.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/table_printer.h"

namespace {

using crystal::TablePrinter;

/// strtod with a full-consumption check: returns false on anything but a
/// complete numeric token ("1.1x", "", "."), instead of the uncaught
/// std::invalid_argument a bare std::stod would throw.
bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

// ------------------------------------------------------------- tiny JSON

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  double NumberOr(const std::string& key, double fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kString ? v->str : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    const bool ok = Value(out) && (SkipSpace(), pos_ == text_.size());
    if (!ok && error != nullptr) {
      *error = "parse error at byte " + std::to_string(pos_);
    }
    return ok;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool String(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out->push_back(c);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool Value(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') return ++pos_, true;
      for (;;) {
        SkipSpace();
        std::string key;
        if (!String(&key)) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_++] != ':') return false;
        if (!Value(&out->object[key])) return false;
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return text_[pos_++] == '}';
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') return ++pos_, true;
      for (;;) {
        out->array.emplace_back();
        if (!Value(&out->array.back())) return false;
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        return text_[pos_++] == ']';
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return String(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') return Literal("null");
    // Number.
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    return ParseDouble(text_.substr(start, pos_ - start), &out->number);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ------------------------------------------------------------- the tool

struct BenchFile {
  std::string path;
  JsonValue root;
  bool server = false;  // server_throughput schema ("levels" array)
  /// Named metric with a direction, in file order. `higher_better` flips
  /// the ratio orientation (qps) relative to times (wall, p99).
  struct Metric {
    std::string name;
    double value = 0;
    bool higher_better = false;
  };
  std::vector<Metric> metrics;
};

bool LoadBench(const std::string& path, BenchFile* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "perf_diff: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::string error;
  if (!JsonParser(text).Parse(&out->root, &error)) {
    std::fprintf(stderr, "perf_diff: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  out->path = path;

  const JsonValue* levels = out->root.Find("levels");
  if (levels != nullptr && levels->kind == JsonValue::Kind::kArray) {
    // server_throughput: throughput and tail latency per concurrency level.
    out->server = true;
    const JsonValue* sequential = out->root.Find("sequential");
    if (sequential != nullptr &&
        sequential->kind == JsonValue::Kind::kObject) {
      const double qps = sequential->NumberOr("qps", -1);
      if (qps > 0) out->metrics.push_back({"qps@sequential", qps, true});
    }
    for (const JsonValue& level : levels->array) {
      const int c = static_cast<int>(level.NumberOr("concurrency", -1));
      const double qps = level.NumberOr("qps", -1);
      const double p99 = level.NumberOr("p99_ms", -1);
      if (c <= 0 || qps <= 0 || p99 <= 0) {
        std::fprintf(stderr, "perf_diff: %s: malformed level entry\n",
                     path.c_str());
        return false;
      }
      const std::string at = "@" + std::to_string(c);
      out->metrics.push_back({"qps" + at, qps, true});
      out->metrics.push_back({"p99_ms" + at, p99, false});
    }
  } else {
    const JsonValue* queries = out->root.Find("queries");
    if (queries == nullptr || queries->kind != JsonValue::Kind::kArray) {
      std::fprintf(stderr,
                   "perf_diff: %s: neither \"queries\" nor \"levels\" array\n",
                   path.c_str());
      return false;
    }
    for (const JsonValue& q : queries->array) {
      const std::string name = q.StringOr("query", "");
      const double median = q.NumberOr("wall_median_ms", -1);
      if (name.empty() || median <= 0) {
        std::fprintf(stderr, "perf_diff: %s: malformed query entry\n",
                     path.c_str());
        return false;
      }
      out->metrics.push_back({name, median, false});
    }
  }
  if (out->metrics.empty()) {
    std::fprintf(stderr, "perf_diff: %s: no metrics\n", path.c_str());
    return false;
  }
  return true;
}

std::string Settings(const BenchFile& f) {
  // Everything that changes the measured work must participate: seed
  // (different data, different selectivities), warmup (with the build
  // cache, warmup=0 pays cold dimension builds inside the timed region
  // while warmup>=1 measures the warm steady state), and the fact-storage
  // encoding (packed scans run different kernels over different bytes — a
  // packed-vs-plain diff is a diagnostic, never a pass/fail gate). Files
  // from before the storage layer carry no "storage" key and default to
  // "plain", which is exactly what they measured. repeat stays out — it
  // only sharpens the median, it does not change a run's work.
  const JsonValue* simd = f.root.Find("simd");
  std::string s =
      "engine=" + f.root.StringOr("engine", "?") +
      " storage=" + f.root.StringOr("storage", "plain") +
      " sf=" + std::to_string(
                   static_cast<int>(f.root.NumberOr("scale_factor", -1))) +
      " fact_divisor=" +
      std::to_string(
          static_cast<int>(f.root.NumberOr("fact_divisor", -1))) +
      " seed=" +
      std::to_string(
          static_cast<long long>(f.root.NumberOr("seed", -1))) +
      " threads=" +
      std::to_string(static_cast<int>(f.root.NumberOr("threads", -1))) +
      " warmup=" +
      std::to_string(static_cast<int>(f.root.NumberOr("warmup", -1))) +
      " simd=" +
      (simd != nullptr && simd->kind == JsonValue::Kind::kBool
           ? (simd->boolean ? "true" : "false")
           : "?");
  if (f.server) {
    // The server workload is defined by its batching bound and traffic
    // mix; a run with a different mix measures different sharing.
    s += " max_batch=" +
         std::to_string(static_cast<int>(f.root.NumberOr("max_batch", -1))) +
         " queries_per_level=" +
         std::to_string(
             static_cast<int>(f.root.NumberOr("queries_per_level", -1))) +
         " mix=" + f.root.StringOr("mix", "?");
  }
  // Generated-workload provenance (server_throughput --mix=generated:SEED
  // and workload_sweep): equal seeds/counts mean byte-identical query
  // suites, anything else is a different workload. workload_seed == 0
  // marks the canonical ssb13 mix — same pool as files from before the
  // generator existed, so it stays out of the fingerprint and old
  // baselines remain comparable.
  const long long wl_seed =
      static_cast<long long>(f.root.NumberOr("workload_seed", 0));
  if (wl_seed != 0) {
    s += " workload_seed=" + std::to_string(wl_seed) + " workload_count=" +
         std::to_string(
             static_cast<int>(f.root.NumberOr("workload_count", 0)));
  }
  // Memory-governor budget: a budgeted run pays admission rejections,
  // cache evictions and degraded (sparse/shared) aggregation on purpose,
  // so its timings answer a different question than an unbudgeted run's.
  // mem_budget == 0 means unenforced — the same regime as files from
  // before the governor existed, so it stays out of the fingerprint and
  // old baselines remain comparable.
  const long long mem_budget =
      static_cast<long long>(f.root.NumberOr("mem_budget", 0));
  if (mem_budget != 0) {
    s += " mem_budget=" + std::to_string(mem_budget);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  double max_regression = 0;  // 0 = report only, never gate
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--max-regression=", 0) == 0) {
      if (!ParseDouble(arg.substr(std::strlen("--max-regression=")),
                       &max_regression) ||
          max_regression <= 0) {
        std::fprintf(stderr,
                     "perf_diff: --max-regression needs a number > 0 "
                     "(got '%s')\n",
                     arg.c_str());
        return 1;
      }
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: perf_diff BASELINE.json NEW.json "
                 "[--max-regression=R]\n");
    return 1;
  }

  BenchFile base, fresh;
  if (!LoadBench(paths[0], &base) || !LoadBench(paths[1], &fresh)) return 1;

  std::printf("baseline: %s  (%s)\n", base.path.c_str(),
              Settings(base).c_str());
  std::printf("new:      %s  (%s)\n\n", fresh.path.c_str(),
              Settings(fresh).c_str());
  // A run taken under fault injection (server_throughput echoes its
  // CRYSTAL_FAULT schedule into the "fault" key) measured failure
  // behavior, not performance: never gate on such a file, whichever side
  // it is on. Pre-robustness files carry no "fault" key and default to
  // clean, which is what they measured.
  const std::string base_fault = base.root.StringOr("fault", "");
  const std::string fresh_fault = fresh.root.StringOr("fault", "");
  const bool faulted = !base_fault.empty() || !fresh_fault.empty();
  if (faulted) {
    std::printf(
        "WARNING: fault injection was active (baseline '%s', new '%s'); "
        "these are not perf measurements and --max-regression is not "
        "enforced.\n\n",
        base_fault.c_str(), fresh_fault.c_str());
  }
  const bool comparable = Settings(base) == Settings(fresh) && !faulted;
  if (!comparable && !faulted) {
    std::printf(
        "WARNING: settings differ; ratios reflect workload differences as "
        "much as code, and --max-regression is not enforced.\n\n");
  }

  std::map<std::string, BenchFile::Metric> fresh_by_name;
  for (const BenchFile::Metric& m : fresh.metrics) fresh_by_name[m.name] = m;
  TablePrinter t({"metric", "base", "new", "ratio"});
  double log_sum = 0;
  int matched = 0;
  int missing = 0;
  int regressions = 0;
  double worst_ratio = 1e300;
  std::string worst_metric;
  for (const BenchFile::Metric& m : base.metrics) {
    const auto it = fresh_by_name.find(m.name);
    if (it == fresh_by_name.end()) {
      t.AddRow({m.name, TablePrinter::Fmt(m.value, 2), "-", "missing"});
      ++missing;
      continue;
    }
    // Oriented so > 1 always means NEW improved (faster query, higher qps,
    // lower tail latency).
    const double ratio = m.higher_better ? it->second.value / m.value
                                         : m.value / it->second.value;
    t.AddRow({m.name, TablePrinter::Fmt(m.value, 2),
              TablePrinter::Fmt(it->second.value, 2),
              TablePrinter::Fmt(ratio, 3) + "x"});
    log_sum += std::log(ratio);
    ++matched;
    if (ratio < worst_ratio) {
      worst_ratio = ratio;
      worst_metric = m.name;
    }
    if (max_regression > 0 && ratio * max_regression < 1) {
      ++regressions;
    }
  }
  if (matched == 0) {
    std::fprintf(stderr, "perf_diff: no common metrics\n");
    return 1;
  }
  const double geomean = std::exp(log_sum / matched);
  t.AddRow({"geomean", "", "", TablePrinter::Fmt(geomean, 3) + "x"});
  t.Print();
  std::printf("\ngeomean ratio %.3fx over %d metrics; worst %s at %.3fx\n",
              geomean, matched, worst_metric.c_str(), worst_ratio);
  if (!base.server) {
    std::printf("recorded geomeans: base %.2f ms, new %.2f ms\n",
                base.root.NumberOr("geomean_wall_median_ms", -1),
                fresh.root.NumberOr("geomean_wall_median_ms", -1));
  }

  if (comparable && max_regression > 0 && (regressions > 0 || missing > 0)) {
    // A metric vanishing from the new file is the worst regression of all —
    // a truncated or crashed bench run must not pass the gate.
    if (missing > 0) {
      std::fprintf(stderr,
                   "perf_diff: %d baseline metric%s missing from '%s'\n",
                   missing, missing == 1 ? " is" : "s are",
                   fresh.path.c_str());
    }
    if (regressions > 0) {
      std::fprintf(stderr,
                   "perf_diff: %d metric%s regressed beyond %.2fx the "
                   "baseline\n",
                   regressions, regressions == 1 ? "" : "s", max_regression);
    }
    return 2;
  }
  return 0;
}
