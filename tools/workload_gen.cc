// workload_gen: seeded deterministic workload suite generator
// (docs/WORKLOADS.md). Sweeps selectivity x join count x group cardinality
// x aggregate mix and emits one `name: spec` line per query in the ad-hoc
// QuerySpec grammar — ready for `crystaldb --adhoc-file=...` or the
// `--serve` stdin protocol. The same --seed always produces byte-identical
// output, in any process, on any platform.
//
//   workload_gen --seed=7 --count=24                # suite on stdout
//   workload_gen --seed=7 --count=24 --out=suite.wl
//   workload_gen --selftest                         # regenerate + compare
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "query/parser.h"
#include "workload/workload.h"

namespace {

constexpr const char kUsage[] = R"(workload_gen - seeded workload generator

Usage: workload_gen [flags]

Flags:
  --seed=N     Generator seed (default 20200302). Equal seeds produce
               byte-identical suites.
  --count=N    Number of queries to generate (default 12). A larger count
               extends a smaller one of the same seed as a prefix.
  --out=FILE   Write the suite to FILE instead of stdout.
  --annotate   Append per-query axis annotations (# selectivity, joins,
               group cells, aggregate values) as trailing comment lines.
  --selftest   Generate the suite twice via independent generator runs,
               re-parse the formatted text, and verify byte identity and
               spec round-trips; exits non-zero on any mismatch.
  --help       Show this message.
)";

bool ParseFlag(const char* arg, const char* name, const char** value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  return false;
}

int SelfTest(const crystal::workload::GenOptions& options) {
  using crystal::workload::GeneratedQuery;
  const std::vector<GeneratedQuery> a =
      crystal::workload::GenerateWorkload(options);
  const std::vector<GeneratedQuery> b =
      crystal::workload::GenerateWorkload(options);
  const std::string text_a = crystal::workload::FormatSuite(options, a);
  const std::string text_b = crystal::workload::FormatSuite(options, b);
  if (text_a != text_b) {
    std::fprintf(stderr, "workload_gen: selftest FAILED: two runs of seed "
                         "%llu differ\n",
                 static_cast<unsigned long long>(options.seed));
    return 1;
  }
  std::vector<GeneratedQuery> parsed;
  std::string error;
  if (!crystal::workload::ParseSuite(text_a, &parsed, &error)) {
    std::fprintf(stderr, "workload_gen: selftest FAILED: %s\n",
                 error.c_str());
    return 1;
  }
  if (parsed.size() != a.size()) {
    std::fprintf(stderr, "workload_gen: selftest FAILED: %zu of %zu specs "
                         "survived the round trip\n",
                 parsed.size(), a.size());
    return 1;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(parsed[i].spec == a[i].spec)) {
      std::fprintf(stderr, "workload_gen: selftest FAILED: spec '%s' does "
                           "not round-trip\n",
                   a[i].spec.name.c_str());
      return 1;
    }
  }
  std::printf("workload_gen: selftest ok (%zu specs, seed %llu)\n", a.size(),
              static_cast<unsigned long long>(options.seed));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  crystal::workload::GenOptions options;
  std::string output_path;
  bool annotate = false;
  bool selftest = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    if (ParseFlag(arg, "--help", &value) || std::strcmp(arg, "-h") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (ParseFlag(arg, "--seed", &value)) {
      char* end = nullptr;
      if (value == nullptr ||
          (options.seed = std::strtoull(value, &end, 10), end == value) ||
          *end != '\0') {
        std::fprintf(stderr, "workload_gen: --seed needs an unsigned "
                             "integer\n");
        return 1;
      }
    } else if (ParseFlag(arg, "--count", &value)) {
      if (value == nullptr || std::atoi(value) < 1) {
        std::fprintf(stderr, "workload_gen: --count needs a positive "
                             "integer\n");
        return 1;
      }
      options.count = std::atoi(value);
    } else if (ParseFlag(arg, "--out", &value)) {
      if (value == nullptr) {
        std::fprintf(stderr, "workload_gen: --out needs a path\n");
        return 1;
      }
      output_path = value;
    } else if (ParseFlag(arg, "--annotate", &value)) {
      annotate = true;
    } else if (ParseFlag(arg, "--selftest", &value)) {
      selftest = true;
    } else {
      std::fprintf(stderr, "workload_gen: unknown flag '%s'\n", arg);
      return 1;
    }
  }

  if (selftest) return SelfTest(options);

  const std::vector<crystal::workload::GeneratedQuery> suite =
      crystal::workload::GenerateWorkload(options);
  std::string text = crystal::workload::FormatSuite(options, suite);
  if (annotate) {
    for (const crystal::workload::GeneratedQuery& q : suite) {
      char line[160];
      std::snprintf(line, sizeof(line),
                    "# %s: selectivity=%.6g joins=%d group_cells=%lld "
                    "agg_values=%d\n",
                    q.spec.name.c_str(), q.selectivity, q.joins,
                    static_cast<long long>(q.group_cells), q.agg_values);
      text += line;
    }
  }

  if (output_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::FILE* f = std::fopen(output_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "workload_gen: cannot open '%s'\n",
                 output_path.c_str());
    return 1;
  }
  const bool ok = std::fputs(text.c_str(), f) >= 0;
  if (std::fclose(f) != 0 || !ok) {
    std::fprintf(stderr, "workload_gen: error writing '%s'\n",
                 output_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "workload_gen: %d specs (seed %llu) written to %s\n",
               options.count, static_cast<unsigned long long>(options.seed),
               output_path.c_str());
  return 0;
}
